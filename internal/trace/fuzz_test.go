package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/magellan-p2p/magellan/internal/faults"
)

// FuzzDecodeReport is the native fuzz target for the wire decoder. CI
// runs it in smoke mode (`go test -run Fuzz ./internal/trace`, seed
// corpus only); `go test -fuzz=FuzzDecodeReport ./internal/trace`
// explores from there. Beyond not panicking, any accepted input must
// survive a re-encode/re-decode round trip unchanged — the property the
// epoch store relies on when it rewrites trace files.
func FuzzDecodeReport(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		r := randomReport(rng)
		f.Add(AppendReport(nil, &r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Fault-shaped seeds: the injector's byte manglers produce exactly
	// the damage a lossy measurement network delivers, so start the
	// explorer in that neighbourhood.
	base := randomReport(rng)
	enc := AppendReport(nil, &base)
	f.Add(faults.TornTail(rng, enc))                            // truncated datagram
	f.Add(faults.DuplicateHead(enc, 16))                        // doubled header bytes
	f.Add(faults.FlipBits(rng, append([]byte(nil), enc...), 3)) // line noise
	zero := base
	zero.Partners = nil
	f.Add(AppendReport(nil, &zero))                       // zero-length partner list
	f.Add(faults.TornTail(rng, AppendReport(nil, &zero))) // and its torn variant
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		if len(rep.Partners) > MaxPartnersPerReport {
			t.Fatalf("decode accepted %d partners (max %d)", len(rep.Partners), MaxPartnersPerReport)
		}
		again, err := DecodeReport(AppendReport(nil, &rep))
		if err != nil {
			t.Fatalf("re-encode of accepted report does not decode: %v", err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("round trip changed the report:\n first: %+v\nsecond: %+v", rep, again)
		}
	})
}

// TestDecodeReportNeverPanics feeds arbitrary bytes to the decoder — a
// trace server ingests datagrams from the open Internet, so the decoder
// must fail cleanly on anything.
func TestDecodeReportNeverPanics(t *testing.T) {
	prop := func(data []byte) bool {
		_, _ = DecodeReport(data)
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedPayloads flips bytes of valid encodings; every
// mutation must either decode to *something* structurally sane or fail —
// never panic, never loop.
func TestDecodeMutatedPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		orig := randomReport(rng)
		buf := AppendReport(nil, &orig)
		// Flip 1-4 random bytes.
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			buf[rng.Intn(len(buf))] ^= byte(1 << uint(rng.Intn(8)))
		}
		rep, err := DecodeReport(buf)
		if err != nil {
			continue
		}
		if len(rep.Partners) > MaxPartnersPerReport {
			t.Fatalf("mutated decode produced %d partners", len(rep.Partners))
		}
	}
}

// TestStoreConcurrentAccess hammers the store from writers and readers
// simultaneously; run with -race to verify the locking.
func TestStoreConcurrentAccess(t *testing.T) {
	store := NewStore(10 * time.Minute)
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := sampleReport(uint32(1+w*perWriter+i), _t0.Add(time.Duration(i)*time.Minute))
				if err := store.Submit(r); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				for _, e := range store.Epochs() {
					_ = store.Snapshot(e)
					_ = store.Reporters(e)
				}
			}
		}()
	}
	wg.Wait()
	readers.Wait()
	if store.Len() != writers*perWriter {
		t.Errorf("store holds %d reports, want %d", store.Len(), writers*perWriter)
	}
}

// TestServerManyClients runs several concurrent UDP clients against one
// server.
func TestServerManyClients(t *testing.T) {
	store := NewStore(10 * time.Minute)
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	const perClient = 100
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				r := sampleReport(uint32(1+c*perClient+i), _t0)
				if err := cl.Submit(r); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%25 == 24 {
					// Deployed clients jitter their send times; an
					// unthrottled 8-way blast is not the workload.
					time.Sleep(time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	// Loopback UDP can in principle drop under burst; expect the vast
	// majority to land.
	waitFor(t, func() bool { return store.Len() >= clients*perClient*9/10 })
}
