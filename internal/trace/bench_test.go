package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func benchReports(n int) []Report {
	rng := rand.New(rand.NewSource(1))
	out := make([]Report, n)
	for i := range out {
		out[i] = randomReport(rng)
	}
	return out
}

func BenchmarkAppendReport(b *testing.B) {
	reports := benchReports(256)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendReport(buf[:0], &reports[i%len(reports)])
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkDecodeReport(b *testing.B) {
	reports := benchReports(256)
	encoded := make([][]byte, len(reports))
	for i := range reports {
		encoded[i] = AppendReport(nil, &reports[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReport(encoded[i%len(encoded)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	reports := benchReports(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for j := range reports {
			if err := w.Submit(reports[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkStoreSubmit(b *testing.B) {
	reports := benchReports(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := NewStore(10 * time.Minute)
		for j := range reports {
			if err := store.Submit(reports[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkJSONLVsBinarySize(b *testing.B) {
	reports := benchReports(512)
	var bin, jsonl int
	for i := 0; i < b.N; i++ {
		var binBuf, jsonBuf bytes.Buffer
		w, err := NewWriter(&binBuf)
		if err != nil {
			b.Fatal(err)
		}
		jw := NewJSONLWriter(&jsonBuf)
		for j := range reports {
			if err := w.Submit(reports[j]); err != nil {
				b.Fatal(err)
			}
			if err := jw.Submit(reports[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		bin, jsonl = binBuf.Len(), jsonBuf.Len()
	}
	b.ReportMetric(float64(jsonl)/float64(bin), "json_to_binary_ratio")
}
