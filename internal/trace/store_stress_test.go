package trace

import (
	"sync"
	"testing"
	"time"
)

// TestStoreConcurrentIngest hammers one Store from writer goroutines
// (simulating the UDP receive loop fanning out bursts of reports) while
// reader goroutines concurrently take snapshots, list epochs, and
// collapse per-peer state — the exact concurrent shape of a live trace
// server with analyzers attached. Run under -race this gives the
// detector real interleavings to bite on; without -race it still checks
// that nothing ingested is lost or duplicated.
func TestStoreConcurrentIngest(t *testing.T) {
	const (
		writers          = 4
		reportsPerWriter = 150
		readers          = 2
	)
	s := NewStore(10 * time.Minute)

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})

	// Readers: continuously observe while ingestion runs. Every view
	// must be internally consistent regardless of interleaving.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for _, e := range s.Epochs() {
					// Each accessor locks separately, so observe the
					// per-peer view first: reports only accumulate, so
					// the later snapshot must hold at least as many.
					latest := s.LatestByPeer(e)
					snap := s.Snapshot(e)
					if snap.Epoch != e {
						t.Errorf("snapshot for epoch %d claims epoch %d", e, snap.Epoch)
						return
					}
					if len(latest) > len(snap.Reports) {
						t.Errorf("epoch %d: %d distinct peers but only %d reports",
							e, len(latest), len(snap.Reports))
						return
					}
				}
				s.Len()
				// Yield between scans: snapshot copies grow with the
				// store, and a reader that never lets go of the read
				// lock turns the race run into a slow-motion replay.
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	// Writers: each peer reports across several epochs, concurrently.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reportsPerWriter; i++ {
				at := _t0.Add(time.Duration(i%7) * 10 * time.Minute)
				rep := sampleReport(uint32(1+w*reportsPerWriter+i), at)
				if err := s.Submit(rep); err != nil {
					t.Errorf("writer %d: submit: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		// Writers and readers share wg; stop readers once the total
		// count shows every writer has finished.
		for {
			if s.Len() >= writers*reportsPerWriter {
				close(stopReaders)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done

	if got, want := s.Len(), writers*reportsPerWriter; got != want {
		t.Fatalf("stored %d reports, want %d", got, want)
	}
	total := 0
	for _, e := range s.Epochs() {
		total += len(s.Snapshot(e).Reports)
	}
	if total != writers*reportsPerWriter {
		t.Fatalf("snapshots hold %d reports in total, want %d", total, writers*reportsPerWriter)
	}
}
