package trace

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/magellan-p2p/magellan/internal/obs"
)

// DefaultQueueDepth bounds the ingest queue between the UDP receive loop
// and the sink worker. At the paper's scale (~100,000 peers on a
// 10-minute cadence) report bursts are synchronized; the queue absorbs
// them, and overflow is shed with accounting rather than backpressure —
// a UDP measurement plane has nobody to push back on.
const DefaultQueueDepth = 4096

// ServerConfig tunes a Server beyond its defaults.
type ServerConfig struct {
	// QueueDepth is the ingest queue bound; 0 means DefaultQueueDepth.
	QueueDepth int
	// Obs, when non-nil, receives the server's ingest metrics
	// (magellan_ingest_*) and a sink-submit latency histogram.
	// Telemetry is measurement-only: enabling it changes no ingest
	// behavior, only what is observable about it.
	Obs *obs.Registry
	// Journal, when non-nil, records server-plane lifecycle events:
	// received/persisted for accepted datagrams, rejected for
	// decode/validation failures, queue_drop for sheds, sink_error for
	// refused reports. The daemon passes an obs.NewWallJournal; events
	// for datagrams that never decoded (sheds, rejects) carry what is
	// known — an empty ID — rather than inventing one.
	Journal *obs.Journal
	// Shard is the 1-based shard label journal events carry when the
	// server is one member of a sharded ingest fleet; 0 (the default)
	// records unlabeled events, exactly as a standalone server always
	// has.
	Shard int32
	// SinkLatency, when non-nil, observes the wall time of every sink
	// submit. A fleet passes one shared histogram to all members so
	// submit latency pools fleet-wide; it must be set here — before the
	// ingest goroutine starts — never assigned after construction. When
	// Obs is also set, the registry's own histogram wins.
	SinkLatency *obs.Histogram
	// Observe, when non-nil, receives every report the sink accepted,
	// after the successful submit and from the ingest goroutine — the
	// subscription hook the live analysis plane attaches to. Like
	// SinkLatency it must be set before construction, and like every
	// other observer it is measurement-only: it sees reports, it cannot
	// reject or reorder them. A slow Observe stalls the ingest worker
	// (the bounded queue absorbs the stall and sheds with accounting),
	// so implementations should be quick or shed internally.
	Observe func(r Report)
}

// ServerStats breaks the server's datagram accounting down by outcome.
type ServerStats struct {
	// Received counts reports decoded, validated, and accepted by the
	// sink.
	Received uint64
	// Rejected counts datagrams that failed to decode or validate —
	// torn, corrupt, or malformed input.
	Rejected uint64
	// QueueDrops counts datagrams shed because the ingest queue was
	// full.
	QueueDrops uint64
	// SinkErrors counts well-formed reports the sink refused.
	SinkErrors uint64
}

// Dropped is the total number of datagrams that did not reach the sink.
func (st ServerStats) Dropped() uint64 {
	return st.Rejected + st.QueueDrops + st.SinkErrors
}

// Server is the standalone trace server of Sec. 3.2: it receives one
// binary-encoded report per UDP datagram and submits it to a sink.
// Ingestion is two-stage — the receive loop copies datagrams into a
// bounded queue and a worker decodes, validates, and submits — so a slow
// sink costs queue drops (counted) instead of kernel-level receive-buffer
// losses (invisible). Datagrams that fail to decode or validate are
// counted and dropped: a measurement pipeline must survive malformed
// input.
type Server struct {
	conn *net.UDPConn
	sink Sink

	queue chan []byte
	pool  sync.Pool

	received   atomic.Uint64
	rejected   atomic.Uint64
	queueDrops atomic.Uint64
	sinkErrors atomic.Uint64

	// sinkLatency, when non-nil, observes the wall time of each sink
	// submit. nil means telemetry is disabled and the ingest loop reads
	// no clock at all.
	sinkLatency *obs.Histogram

	// journal, when non-nil, records per-datagram lifecycle events
	// (nil-safe: the disabled recorder costs nothing on the hot path).
	// shard is the 1-based fleet label those events carry; 0 unsharded.
	journal *obs.Journal
	shard   int32

	// observe, when non-nil, is called with every accepted report after
	// the sink submit succeeds (see ServerConfig.Observe).
	observe func(r Report)

	recvWG sync.WaitGroup
	workWG sync.WaitGroup
	once   sync.Once
}

// NewServer binds a UDP socket on addr (e.g. "127.0.0.1:0") and starts
// the receive loop with default settings. Close must be called to release
// the socket.
func NewServer(addr string, sink Sink) (*Server, error) {
	return NewServerWithConfig(addr, sink, ServerConfig{})
}

// NewServerWithConfig is NewServer with explicit tuning.
func NewServerWithConfig(addr string, sink Sink, cfg ServerConfig) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace server: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("trace server: listen: %w", err)
	}
	// A trace server absorbs synchronized report bursts (clients share
	// the 10-minute cadence); a deep receive buffer is what keeps the
	// kernel from shedding them. Best effort: some platforms clamp or
	// refuse it, which is worth knowing about but not fatal.
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		log.Printf("trace server: set read buffer: %v", err)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	s := &Server{
		conn:  conn,
		sink:  sink,
		queue: make(chan []byte, depth),
		pool: sync.Pool{New: func() any {
			buf := make([]byte, 0, 64*1024)
			return &buf
		}},
	}
	s.journal = cfg.Journal
	s.shard = cfg.Shard
	s.sinkLatency = cfg.SinkLatency
	s.observe = cfg.Observe
	if cfg.Obs != nil {
		registerIngestMetrics(cfg.Obs, s, depth)
	}
	s.recvWG.Add(1)
	go s.recvLoop()
	s.workWG.Add(1)
	go s.ingestLoop()
	return s, nil
}

// registerIngestMetrics exposes the server's accounting. The counters
// sample the same atomics Stats reads, so scraping is lock-free and
// never perturbs ingestion.
func registerIngestMetrics(reg *obs.Registry, s *Server, depth int) {
	reg.CounterFunc("magellan_ingest_received_total",
		"Reports decoded, validated, and accepted by the sink.",
		s.received.Load)
	reg.CounterFunc("magellan_ingest_rejected_total",
		"Datagrams dropped for failing decode or validation.",
		s.rejected.Load)
	reg.CounterFunc("magellan_ingest_queue_drops_total",
		"Datagrams shed because the ingest queue was full.",
		s.queueDrops.Load)
	reg.CounterFunc("magellan_ingest_sink_errors_total",
		"Well-formed reports the sink refused.",
		s.sinkErrors.Load)
	reg.GaugeFunc("magellan_ingest_queue_depth",
		"Datagrams currently waiting in the ingest queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("magellan_ingest_queue_capacity",
		"Bound of the ingest queue.",
		func() float64 { return float64(depth) })
	s.sinkLatency = reg.Histogram("magellan_sink_submit_duration_seconds",
		"Wall time of each sink submit, successful or not.",
		obs.DefLatencyBuckets())
}

// Addr returns the bound address, useful when listening on port 0.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Received returns the number of successfully ingested reports.
func (s *Server) Received() uint64 { return s.received.Load() }

// Dropped returns the number of datagrams that did not reach the sink
// (decode/validation failures, queue sheds, or sink errors).
func (s *Server) Dropped() uint64 { return s.Stats().Dropped() }

// Stats returns the full per-outcome accounting.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Received:   s.received.Load(),
		Rejected:   s.rejected.Load(),
		QueueDrops: s.queueDrops.Load(),
		SinkErrors: s.sinkErrors.Load(),
	}
}

// QueueLen returns the number of datagrams currently waiting in the
// ingest queue (a point-in-time read; safe from any goroutine).
func (s *Server) QueueLen() int { return len(s.queue) }

// QueueCap returns the ingest queue bound.
func (s *Server) QueueCap() int { return cap(s.queue) }

// Close stops the receive loop, drains the ingest queue, and releases the
// socket. It is safe to call multiple times.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		err = s.conn.Close()
		s.recvWG.Wait()
		close(s.queue)
		s.workWG.Wait()
	})
	return err
}

// recvLoop copies each datagram into a pooled buffer and enqueues it,
// shedding (with accounting) when the queue is full.
func (s *Server) recvLoop() {
	defer s.recvWG.Done()
	scratch := make([]byte, 64*1024)
	for {
		n, _, err := s.conn.ReadFromUDP(scratch)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient socket errors: keep serving.
			continue
		}
		bufp, _ := s.pool.Get().(*[]byte)
		*bufp = append((*bufp)[:0], scratch[:n]...)
		select {
		case s.queue <- *bufp:
		default:
			s.queueDrops.Add(1)
			s.pool.Put(bufp)
			// The datagram was never decoded, so its identity is unknown;
			// the shed is still on the record.
			s.journal.RecordNowShard(obs.StageServer, obs.VerdictQueueDrop, obs.ReportID{}, s.shard)
		}
	}
}

// ingestLoop decodes, validates, and submits queued datagrams.
func (s *Server) ingestLoop() {
	defer s.workWG.Done()
	for data := range s.queue {
		rep, err := DecodeReport(data)
		recycled := data
		s.pool.Put(&recycled)
		if err != nil {
			s.rejected.Add(1)
			s.journal.RecordNowShard(obs.StageServer, obs.VerdictRejected, obs.ReportID{}, s.shard)
			continue
		}
		if err := rep.Validate(); err != nil {
			s.rejected.Add(1)
			s.journal.RecordNowShard(obs.StageServer, obs.VerdictRejected, journalID(&rep, DefaultReportInterval), s.shard)
			continue
		}
		var id obs.ReportID
		if s.journal != nil {
			id = journalID(&rep, DefaultReportInterval)
			s.journal.RecordNowShard(obs.StageServer, obs.VerdictReceived, id, s.shard)
		}
		var submitErr error
		if s.sinkLatency != nil {
			tm := obs.StartTimer()
			submitErr = s.sink.Submit(rep)
			tm.ObserveSeconds(s.sinkLatency)
		} else {
			submitErr = s.sink.Submit(rep)
		}
		if submitErr != nil {
			s.sinkErrors.Add(1)
			s.journal.RecordNowShard(obs.StageServer, obs.VerdictSinkError, id, s.shard)
			continue
		}
		s.received.Add(1)
		s.journal.RecordNowShard(obs.StageServer, obs.VerdictPersisted, id, s.shard)
		if s.observe != nil {
			s.observe(rep)
		}
	}
}

// Client sends reports to a trace server over UDP, one report per
// datagram, exactly as the instrumented UUSee client does.
type Client struct {
	conn net.Conn
	buf  []byte
}

// Dial connects a client to the trace server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace client: dial %q: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

var _ Sink = (*Client)(nil)

// Submit implements Sink: it encodes the report and ships it in a single
// datagram.
func (c *Client) Submit(r Report) error {
	c.buf = AppendReport(c.buf[:0], &r)
	if len(c.buf) > 64*1024 {
		return fmt.Errorf("trace client: report of %d bytes exceeds datagram limit", len(c.buf))
	}
	if _, err := c.conn.Write(c.buf); err != nil {
		return fmt.Errorf("trace client: send: %w", err)
	}
	return nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }
