package trace

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
)

// Server is the standalone trace server of Sec. 3.2: it receives one
// binary-encoded report per UDP datagram and submits it to a sink.
// Datagrams that fail to decode or validate are counted and dropped — a
// measurement pipeline must survive malformed input.
type Server struct {
	conn *net.UDPConn
	sink Sink

	received atomic.Uint64
	dropped  atomic.Uint64

	wg   sync.WaitGroup
	once sync.Once
}

// NewServer binds a UDP socket on addr (e.g. "127.0.0.1:0") and starts
// the receive loop. Close must be called to release the socket.
func NewServer(addr string, sink Sink) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace server: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("trace server: listen: %w", err)
	}
	// A trace server absorbs synchronized report bursts (clients share
	// the 10-minute cadence); a deep receive buffer is what keeps the
	// kernel from shedding them. Best effort: some platforms clamp or
	// refuse it, which is worth knowing about but not fatal.
	if err := conn.SetReadBuffer(4 << 20); err != nil {
		log.Printf("trace server: set read buffer: %v", err)
	}
	s := &Server{conn: conn, sink: sink}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound address, useful when listening on port 0.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Received returns the number of successfully ingested reports.
func (s *Server) Received() uint64 { return s.received.Load() }

// Dropped returns the number of datagrams rejected (decode or validation
// failures, or sink errors).
func (s *Server) Dropped() uint64 { return s.dropped.Load() }

// Close stops the receive loop and releases the socket. It is safe to
// call multiple times.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient socket errors: keep serving.
			continue
		}
		rep, err := DecodeReport(buf[:n])
		if err != nil {
			s.dropped.Add(1)
			continue
		}
		if err := rep.Validate(); err != nil {
			s.dropped.Add(1)
			continue
		}
		if err := s.sink.Submit(rep); err != nil {
			s.dropped.Add(1)
			continue
		}
		s.received.Add(1)
	}
}

// Client sends reports to a trace server over UDP, one report per
// datagram, exactly as the instrumented UUSee client does.
type Client struct {
	conn net.Conn
	buf  []byte
}

// Dial connects a client to the trace server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace client: dial %q: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

var _ Sink = (*Client)(nil)

// Submit implements Sink: it encodes the report and ships it in a single
// datagram.
func (c *Client) Submit(r Report) error {
	c.buf = AppendReport(c.buf[:0], &r)
	if len(c.buf) > 64*1024 {
		return fmt.Errorf("trace client: report of %d bytes exceeds datagram limit", len(c.buf))
	}
	if _, err := c.conn.Write(c.buf); err != nil {
		return fmt.Errorf("trace client: send: %w", err)
	}
	return nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }
