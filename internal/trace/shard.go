package trace

import (
	"cmp"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sync/atomic"
	"time"

	"github.com/magellan-p2p/magellan/internal/isp"
)

// Sharded ingest. The paper's measurement plane ran a fleet of trace
// servers, not one; this file is the partitioning and merge discipline
// that lets this reproduction do the same without giving up a byte of
// determinism. Reports are partitioned by reporting peer address with a
// fixed hash (ShardOf), so every report of one peer always lands on the
// same shard regardless of fleet size, and per-peer arrival order is
// preserved shard-locally. MergeStores/MergeFiles fold per-shard
// stores/files back into one canonical store whose sealed index — and
// therefore every analysis output bit — is identical to a single-server
// run, for any shard count.

// shardHash is the fixed partitioning hash: FNV-1a over the address's
// four big-endian bytes. It is part of the ingest tier's wire contract —
// changing it re-partitions every deployed fleet — so it must never
// depend on process state, map order, or the wall clock.
func shardHash(a uint32) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ (a >> 24)) * prime32
	h = (h ^ (a >> 16 & 0xff)) * prime32
	h = (h ^ (a >> 8 & 0xff)) * prime32
	h = (h ^ (a & 0xff)) * prime32
	return h
}

// ShardOf maps a reporting peer address to its owning shard in a fleet
// of the given size. The map is total and stable: the same address
// always yields the same shard for a given fleet size, with no entropy,
// no clock, and no iteration order involved. Fleet sizes ≤ 1 collapse
// to shard 0.
func ShardOf(addr isp.Addr, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(shardHash(uint32(addr)) % uint32(shards))
}

// Balancer fans reports out to a fleet of per-shard sinks by owning
// shard — the in-process stand-in for client-side routing (deployed
// UUSee clients stuck to the collection server their address hashed
// to). It is safe for concurrent use when the underlying sinks are.
type Balancer struct {
	sinks  []Sink
	routed []atomic.Uint64
}

var _ Sink = (*Balancer)(nil)

// NewBalancer builds a balancer over the given per-shard sinks, in
// shard order. It panics on an empty fleet: a balancer with nowhere to
// route is a construction bug, not a runtime condition.
func NewBalancer(sinks ...Sink) *Balancer {
	if len(sinks) == 0 {
		panic("trace: balancer over zero shards")
	}
	return &Balancer{sinks: sinks, routed: make([]atomic.Uint64, len(sinks))}
}

// Shards returns the fleet size.
func (b *Balancer) Shards() int { return len(b.sinks) }

// Submit implements Sink: the report goes to its owning shard.
func (b *Balancer) Submit(r Report) error {
	i := ShardOf(r.Addr, len(b.sinks))
	b.routed[i].Add(1)
	return b.sinks[i].Submit(r)
}

// Routed returns the number of reports routed to each shard, in shard
// order.
func (b *Balancer) Routed() []uint64 {
	out := make([]uint64, len(b.routed))
	for i := range b.routed {
		out[i] = b.routed[i].Load()
	}
	return out
}

// ShardedClient routes reports to a live fleet of trace servers over
// UDP, one client socket per shard. Like Client, it is not safe for
// concurrent use; give each sending goroutine its own.
type ShardedClient struct {
	clients []*Client
	sent    []uint64
}

var _ Sink = (*ShardedClient)(nil)

// DialSharded connects one client per shard address, in shard order.
func DialSharded(addrs ...string) (*ShardedClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("trace: sharded client needs at least one address")
	}
	c := &ShardedClient{sent: make([]uint64, len(addrs))}
	for _, addr := range addrs {
		cl, err := Dial(addr)
		if err != nil {
			c.Close() //magellan:allow erridle — best-effort cleanup; the dial error wins
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Submit implements Sink: the report ships to its owning shard's server.
func (c *ShardedClient) Submit(r Report) error {
	i := ShardOf(r.Addr, len(c.clients))
	if err := c.clients[i].Submit(r); err != nil {
		return err
	}
	c.sent[i]++
	return nil
}

// Sent returns the number of reports sent to each shard, in shard order.
func (c *ShardedClient) Sent() []uint64 {
	return slices.Clone(c.sent)
}

// Close releases every shard socket; the first error wins but all are
// closed.
func (c *ShardedClient) Close() error {
	var firstErr error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MergeStores folds per-shard stores into one canonical store. Within
// each epoch the merged order is (address ascending, then per-address
// arrival order) — a stable sort over the shard-order concatenation.
// Because the partitioner owns each address wholly on one shard, the
// per-address subsequence is exactly the single-server arrival
// subsequence, so the merged store's sealed index (latest-by-peer
// dedup, then address sort) is byte-identical to a single-server run's
// — and to any other shard count's merge. That is the determinism
// argument the golden-equivalence suite pins.
func MergeStores(shards ...*Store) (*Store, error) {
	if len(shards) == 0 {
		return nil, errors.New("trace: merge of zero shards")
	}
	interval := shards[0].Interval()
	for i, sh := range shards {
		if sh.Interval() != interval {
			return nil, fmt.Errorf("trace: merge interval mismatch: shard 0 has %v, shard %d has %v",
				interval, i, sh.Interval())
		}
	}
	out := NewStore(interval)

	seen := make(map[int64]struct{})
	var epochs []int64
	for _, sh := range shards {
		for _, e := range sh.Epochs() {
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				epochs = append(epochs, e)
			}
		}
	}
	slices.Sort(epochs)

	byAddr := func(a, b Report) int { return cmp.Compare(a.Addr, b.Addr) }
	var buf []Report
	for _, e := range epochs {
		buf = buf[:0]
		for _, sh := range shards {
			buf = append(buf, sh.Snapshot(e).Reports...)
		}
		slices.SortStableFunc(buf, byAddr)
		for i := range buf {
			if err := out.Submit(buf[i]); err != nil {
				return nil, fmt.Errorf("trace: merge epoch %d: %w", e, err)
			}
		}
	}
	return out, nil
}

// MergeOptions tunes MergeStreams/MergeFiles.
type MergeOptions struct {
	// Tolerant makes the merge survive damaged shard inputs instead of
	// failing: a source that is not a binary trace at all is skipped
	// (counted), a torn tail ends that source at its last intact record
	// (counted), and a decoded record failing validation is dropped
	// (counted). Compaction of files recovered from crashed or lossy
	// shard servers wants this; strict mode (the default) treats every
	// anomaly as an error.
	Tolerant bool
}

// MergeStats accounts for what a tolerant merge had to survive.
type MergeStats struct {
	// Sources is the number of shard inputs offered.
	Sources int
	// Records is the number of reports merged into the store.
	Records uint64
	// SkippedSources counts inputs that were not binary traces (bad
	// magic or unsupported version) and were skipped whole.
	SkippedSources int
	// TornSources counts inputs that ended inside a record; their intact
	// prefix was merged.
	TornSources int
	// InvalidRecords counts structurally decodable records that failed
	// validation and were dropped.
	InvalidRecords uint64
}

// MergeStreams reads one binary trace stream per shard (in shard order)
// and merges them into one canonical store; see MergeStores for the
// determinism argument and MergeOptions for fault tolerance.
func MergeStreams(interval time.Duration, opts MergeOptions, srcs ...io.Reader) (*Store, MergeStats, error) {
	stats := MergeStats{Sources: len(srcs)}
	shards := make([]*Store, 0, len(srcs))
	for i, src := range srcs {
		sh := NewStore(interval)
		rd, err := NewReader(src)
		if err != nil {
			if !opts.Tolerant {
				return nil, stats, fmt.Errorf("trace: merge source %d: %w", i, err)
			}
			stats.SkippedSources++
			continue
		}
		for {
			rep, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// A mid-stream decode failure is a torn tail (crash) or
				// corruption; either way the records before it are good
				// and the ones after it are unreachable.
				if !opts.Tolerant {
					return nil, stats, fmt.Errorf("trace: merge source %d: %w", i, err)
				}
				stats.TornSources++
				break
			}
			if err := rep.Validate(); err != nil {
				if !opts.Tolerant {
					return nil, stats, fmt.Errorf("trace: merge source %d: %w", i, err)
				}
				stats.InvalidRecords++
				continue
			}
			if err := sh.Submit(rep); err != nil {
				return nil, stats, fmt.Errorf("trace: merge source %d: %w", i, err)
			}
			stats.Records++
		}
		shards = append(shards, sh)
	}
	if len(shards) == 0 {
		// All sources skipped (or none offered): the merge of nothing is
		// the empty store, not an error — a fleet whose shards all
		// crashed pre-header still compacts to a valid (empty) trace.
		return NewStore(interval), stats, nil
	}
	out, err := MergeStores(shards...)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// MergeFiles is MergeStreams over per-shard trace files, in shard
// order — the compaction entry point for a fleet's rotated output.
func MergeFiles(paths []string, interval time.Duration, opts MergeOptions) (*Store, MergeStats, error) {
	srcs := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close() //magellan:allow erridle — read-only descriptors; nothing can be lost
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, MergeStats{Sources: len(paths)}, err
		}
		files = append(files, f)
		srcs = append(srcs, f)
	}
	return MergeStreams(interval, opts, srcs...)
}

// Fingerprint returns a SHA-256 over the sealed store's canonical
// encoding: epochs ascending, each epoch's latest-by-peer reports in
// address order, each report in the binary wire encoding. Two stores
// fingerprint equal iff every bit the analyzers can observe is equal —
// the pinnable identity the sharded-ingest equivalence tests and the CI
// smoke compare.
func (ix *Index) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var scratch [2 * binary.MaxVarintLen64]byte
	n := binary.PutVarint(scratch[:], int64(ix.interval))
	n += binary.PutUvarint(scratch[n:], uint64(len(ix.epochs)))
	h.Write(scratch[:n])

	buf := make([]byte, 0, 1024)
	for i, e := range ix.epochs {
		reports := ix.reports[ix.offsets[i]:ix.offsets[i+1]]
		n = binary.PutVarint(scratch[:], e)
		n += binary.PutUvarint(scratch[n:], uint64(len(reports)))
		h.Write(scratch[:n])
		for k := range reports {
			buf = AppendReport(buf[:0], &reports[k])
			n = binary.PutUvarint(scratch[:], uint64(len(buf)))
			h.Write(scratch[:n])
			h.Write(buf)
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
