package trace

import (
	"testing"
	"time"
)

func TestServerEndToEnd(t *testing.T) {
	store := NewStore(10 * time.Minute)
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := client.Submit(sampleReport(uint32(100+i), _t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}

	waitFor(t, func() bool { return store.Len() == n })
	if got := srv.Received(); got != n {
		t.Errorf("Received = %d, want %d", got, n)
	}
	if got := srv.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}

	// The stored reports survive the wire intact.
	e := store.Epochs()[0]
	latest := store.LatestByPeer(e)
	rep, ok := latest[100]
	if !ok {
		t.Fatal("peer 100's report missing from store")
	}
	if rep.Channel != "CCTV1" || len(rep.Partners) != 3 {
		t.Errorf("report mangled in flight: %+v", rep)
	}
}

func TestServerDropsGarbage(t *testing.T) {
	store := NewStore(10 * time.Minute)
	srv, err := NewServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	// Raw garbage datagram.
	if _, err := client.conn.Write([]byte("definitely not a report")); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	// Structurally valid encoding that fails validation (zero address).
	bad := sampleReport(0, _t0)
	buf := AppendReport(nil, &bad)
	if _, err := client.conn.Write(buf); err != nil {
		t.Fatalf("write invalid: %v", err)
	}
	// One good report so we can synchronize.
	if err := client.Submit(sampleReport(55, _t0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	waitFor(t, func() bool { return srv.Received() == 1 && srv.Dropped() == 2 })
	if store.Len() != 1 {
		t.Errorf("store holds %d reports, want only the valid one", store.Len())
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", Discard)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientRejectsOversizedReport(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	big := sampleReport(9, _t0)
	big.Channel = string(make([]byte, 70*1024))
	if err := client.Submit(big); err == nil {
		t.Error("oversized report accepted")
	}
}

// waitFor polls cond for up to five seconds; UDP delivery on loopback is
// fast but asynchronous.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
