package trace

import (
	"slices"
	"testing"
	"time"

	"github.com/magellan-p2p/magellan/internal/isp"
)

// indexStore builds a store with duplicate per-peer reports inside an
// epoch (submitted out of address order) so the index's dedup and
// ordering actually have work to do.
func indexStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(10 * time.Minute)
	addrs := []uint32{900, 120, 57, 411, 333}
	for e := 0; e < 3; e++ {
		base := _t0.Add(time.Duration(e) * 10 * time.Minute)
		for round := 0; round < 2; round++ {
			for i, a := range addrs {
				r := sampleReport(a, base.Add(time.Duration(round*3+i)*time.Minute))
				r.PlayPoint = uint32(1000*e + 100*round + i)
				if err := s.Submit(r); err != nil {
					t.Fatalf("Submit: %v", err)
				}
			}
		}
	}
	return s
}

func TestIndexMatchesLegacyAccessors(t *testing.T) {
	s := indexStore(t)
	ix := s.Seal()

	epochs := s.Epochs()
	if got := ix.Epochs(); !slices.Equal(got, epochs) {
		t.Fatalf("index epochs %v, want %v", got, epochs)
	}
	if ix.Interval() != s.Interval() {
		t.Errorf("interval %v, want %v", ix.Interval(), s.Interval())
	}

	for _, e := range epochs {
		legacy := s.LatestByPeer(e)
		reporters := ix.Reporters(e)
		reports := ix.Reports(e)
		if len(reporters) != len(legacy) || len(reports) != len(legacy) {
			t.Fatalf("epoch %d: %d reporters / %d reports, want %d",
				e, len(reporters), len(reports), len(legacy))
		}
		if !slices.IsSorted(reporters) {
			t.Errorf("epoch %d: reporters not sorted: %v", e, reporters)
		}
		for i, a := range reporters {
			want := legacy[a]
			got := reports[i]
			if got.Addr != a {
				t.Fatalf("epoch %d: column misaligned at %d: %v vs %v", e, i, got.Addr, a)
			}
			// Last-submitted report wins, exactly like the legacy map.
			if got.PlayPoint != want.PlayPoint || !got.Time.Equal(want.Time) {
				t.Errorf("epoch %d peer %v: dedup kept PlayPoint %d at %v, legacy kept %d at %v",
					e, a, got.PlayPoint, got.Time, want.PlayPoint, want.Time)
			}
		}
		if got, want := ix.EpochStart(e), s.EpochStart(e); !got.Equal(want) {
			t.Errorf("epoch %d start %v, want %v", e, got, want)
		}

		all := ix.AllPeers(e)
		if !slices.IsSorted(all) {
			t.Errorf("epoch %d: all-peers not sorted", e)
		}
		seen := make(map[isp.Addr]struct{})
		for a, rep := range legacy {
			seen[a] = struct{}{}
			for _, p := range rep.Partners {
				seen[p.Addr] = struct{}{}
			}
		}
		if len(all) != len(seen) {
			t.Errorf("epoch %d: %d all-peers, want %d", e, len(all), len(seen))
		}
		for _, a := range all {
			if _, ok := seen[a]; !ok {
				t.Errorf("epoch %d: all-peers has %v not in legacy union", e, a)
			}
		}
	}

	// Unknown epochs yield empty views, not panics.
	if ix.Reports(999999) != nil || ix.Reporters(999999) != nil || ix.AllPeers(999999) != nil {
		t.Error("unknown epoch returned non-nil slices")
	}
}

func TestSealCachesUntilSubmit(t *testing.T) {
	s := indexStore(t)
	ix1 := s.Seal()
	if ix2 := s.Seal(); ix2 != ix1 {
		t.Error("Seal rebuilt the index for an unchanged store")
	}
	if err := s.Submit(sampleReport(7777, _t0.Add(25*time.Minute))); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ix3 := s.Seal()
	if ix3 == ix1 {
		t.Fatal("Seal returned a stale index after Submit")
	}
	found := slices.Contains(ix3.Reporters(ix3.Epochs()[2]), isp.Addr(7777))
	if !found {
		t.Error("new report missing from resealed index")
	}
	// The old index is immutable: it must not see the new report.
	if slices.Contains(ix1.Reporters(ix1.Epochs()[2]), isp.Addr(7777)) {
		t.Error("old index mutated by Submit")
	}
}
