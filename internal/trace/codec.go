package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/magellan-p2p/magellan/internal/isp"
)

// Binary trace format: a 5-byte header ("MGLT" + version) followed by
// length-prefixed report payloads. Integers are unsigned varints, floats
// are little-endian IEEE-754 doubles. A two-week scaled trace compresses
// roughly 4× versus JSON lines.
var (
	_magic = [4]byte{'M', 'G', 'L', 'T'}

	// ErrBadMagic reports a stream that is not a binary trace.
	ErrBadMagic = errors.New("trace: bad magic, not a binary trace stream")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("trace: unsupported trace format version")
	// ErrCorrupt reports a structurally invalid record.
	ErrCorrupt = errors.New("trace: corrupt record")
)

const _version = 1

// _maxRecordSize bounds a single encoded report (a full 512-partner list
// is well under this).
const _maxRecordSize = 1 << 20

// AppendReport encodes a report payload (no length framing) onto buf.
func AppendReport(buf []byte, r *Report) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Time.UnixNano()))
	buf = binary.AppendUvarint(buf, uint64(r.Addr))
	buf = binary.AppendUvarint(buf, uint64(r.Port))
	buf = binary.AppendUvarint(buf, uint64(len(r.Channel)))
	buf = append(buf, r.Channel...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.UpKbps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.DownKbps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.RecvKbps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.SentKbps))
	buf = binary.LittleEndian.AppendUint64(buf, r.BufferMap)
	buf = binary.AppendUvarint(buf, uint64(r.PlayPoint))
	buf = binary.AppendUvarint(buf, uint64(len(r.Partners)))
	for _, p := range r.Partners {
		buf = binary.AppendUvarint(buf, uint64(p.Addr))
		buf = binary.AppendUvarint(buf, uint64(p.Port))
		buf = binary.AppendUvarint(buf, uint64(p.SentSeg))
		buf = binary.AppendUvarint(buf, uint64(p.RecvSeg))
	}
	return buf
}

// DecodeReport decodes one report payload produced by AppendReport.
func DecodeReport(data []byte) (out Report, err error) {
	br := bytes.NewReader(data)

	// Short reads inside the field helpers abort decoding via a typed
	// panic, converted back into ErrCorrupt here; any other panic is a
	// bug and re-propagates.
	defer func() {
		if rec := recover(); rec != nil {
			ec, ok := rec.(errCorrupt)
			if !ok {
				panic(rec)
			}
			err = fmt.Errorf("%w: %v", ErrCorrupt, ec.err)
		}
	}()

	u := func() uint64 {
		v, uerr := binary.ReadUvarint(br)
		if uerr != nil {
			panic(errCorrupt{uerr})
		}
		return v
	}
	f64 := func() uint64 {
		var b [8]byte
		if _, ferr := io.ReadFull(br, b[:]); ferr != nil {
			panic(errCorrupt{ferr})
		}
		return binary.LittleEndian.Uint64(b[:])
	}
	f := func() float64 { return math.Float64frombits(f64()) }

	var r Report
	r.Time = time.Unix(0, int64(u())).UTC()
	r.Addr = isp.Addr(u())
	r.Port = uint16(u())
	n := u()
	if n > _maxRecordSize {
		return r, fmt.Errorf("%w: channel length %d", ErrCorrupt, n)
	}
	name := make([]byte, n)
	if _, rerr := io.ReadFull(br, name); rerr != nil {
		return r, fmt.Errorf("%w: channel bytes: %v", ErrCorrupt, rerr)
	}
	r.Channel = string(name)
	r.UpKbps, r.DownKbps = f(), f()
	r.RecvKbps, r.SentKbps = f(), f()
	r.BufferMap = f64()
	r.PlayPoint = uint32(u())
	np := u()
	if np > MaxPartnersPerReport {
		return r, fmt.Errorf("%w: %d partners", ErrCorrupt, np)
	}
	if np > 0 {
		r.Partners = make([]PartnerRecord, np)
	}
	for i := range r.Partners {
		r.Partners[i] = PartnerRecord{
			Addr:    isp.Addr(u()),
			Port:    uint16(u()),
			SentSeg: uint32(u()),
			RecvSeg: uint32(u()),
		}
	}
	if br.Len() != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, br.Len())
	}
	return r, nil
}

type errCorrupt struct{ err error }

// Writer streams reports in the binary format. It implements Sink.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
}

var _ Sink = (*Writer)(nil)

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(_magic[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	if err := bw.WriteByte(_version); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// Submit implements Sink.
func (w *Writer) Submit(r Report) error {
	w.buf = AppendReport(w.buf[:0], &r)
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(w.buf)))
	if _, err := w.bw.Write(frame[:n]); err != nil {
		return fmt.Errorf("trace: write frame: %w", err)
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams reports from the binary format.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if !bytes.Equal(hdr[:4], _magic[:]) {
		return nil, ErrBadMagic
	}
	if hdr[4] != _version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	return &Reader{br: br}, nil
}

// Next returns the next report, or io.EOF at end of stream.
func (r *Reader) Next() (Report, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Report{}, io.EOF
		}
		return Report{}, fmt.Errorf("trace: read frame: %w", err)
	}
	if n > _maxRecordSize {
		return Report{}, fmt.Errorf("%w: record size %d", ErrCorrupt, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return Report{}, fmt.Errorf("trace: read record: %w", err)
	}
	return DecodeReport(r.buf)
}

// LoadStore reads a whole binary trace stream into a Store.
func LoadStore(src io.Reader, interval time.Duration) (*Store, error) {
	rd, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	store := NewStore(interval)
	for {
		rep, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return store, nil
		}
		if err != nil {
			return nil, err
		}
		if err := store.Submit(rep); err != nil {
			return nil, err
		}
	}
}

// JSONLWriter streams reports as one JSON object per line. It implements
// Sink.
type JSONLWriter struct {
	enc *json.Encoder
}

var _ Sink = (*JSONLWriter)(nil)

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Submit implements Sink.
func (w *JSONLWriter) Submit(r Report) error {
	if err := w.enc.Encode(&r); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// JSONLReader streams reports from JSON lines.
type JSONLReader struct {
	dec *json.Decoder
}

// NewJSONLReader wraps r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	return &JSONLReader{dec: json.NewDecoder(r)}
}

// Next returns the next report, or io.EOF at end of stream.
func (r *JSONLReader) Next() (Report, error) {
	var rep Report
	if err := r.dec.Decode(&rep); err != nil {
		if errors.Is(err, io.EOF) {
			return Report{}, io.EOF
		}
		return Report{}, fmt.Errorf("trace: decode json: %w", err)
	}
	return rep, nil
}
