package trace

import (
	"sync"
	"testing"
	"time"

	"github.com/magellan-p2p/magellan/internal/obs"
)

// TestFleetRaceStress hammers a sharded fleet from several concurrent
// loadgen-style clients (run under -race in CI) and then reconciles
// every shard's outcome counters against the fleet-wide journal tally:
// each datagram the servers accounted for must have left exactly one
// server-plane event carrying that shard's label. Loopback UDP may shed
// datagrams before the servers see them — those are invisible to both
// sides of the reconciliation, so the two ledgers must still agree
// exactly.
func TestFleetRaceStress(t *testing.T) {
	const (
		shards    = 3
		clients   = 4
		perClient = 300
	)
	// The ring must hold every event the run can record (received +
	// persisted per delivery, plus shed/reject singles): an overflowing
	// journal would invalidate the tally by construction.
	journal := obs.NewWallJournal(4 * clients * perClient * shards)
	stores := make([]*Store, shards)
	fleet, err := NewFleet(FleetAddrs("127.0.0.1", shards),
		func(i int) (Sink, error) { stores[i] = NewStore(0); return stores[i], nil },
		FleetConfig{Journal: journal, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialSharded(fleet.Addrs()...)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				r := sampleReport(uint32(0x0c000001+c*perClient+i), _t0)
				if err := cl.Submit(r); err != nil {
					t.Errorf("client %d: Submit: %v", c, err)
					return
				}
				if i%100 == 99 {
					time.Sleep(time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()

	// Quiesce: the servers drain asynchronously, so wait until the
	// fleet-wide accounting stops moving before reconciling.
	deadline := time.Now().Add(5 * time.Second)
	prev, stable := fleet.TotalStats(), 0
	for time.Now().Before(deadline) && stable < 5 {
		time.Sleep(50 * time.Millisecond)
		if st := fleet.TotalStats(); st == prev {
			stable++
		} else {
			prev, stable = st, 0
		}
	}
	if total := fleet.TotalStats(); total.Received == 0 {
		t.Fatal("fleet received nothing")
	}
	if journal.Dropped() != 0 {
		t.Fatalf("journal overflowed (%d dropped); the tally below would be meaningless", journal.Dropped())
	}

	// Fold the journal into per-shard outcome tallies. Shard labels are
	// 1-based; no server-plane event may be unlabeled in a fleet run.
	type tally struct{ persisted, rejected, queueDrops, sinkErrors uint64 }
	tallies := make([]tally, shards)
	for _, ev := range journal.Events() {
		if ev.Stage != obs.StageServer {
			continue
		}
		if ev.Shard < 1 || int(ev.Shard) > shards {
			t.Fatalf("server-plane event with shard label %d (want 1..%d)", ev.Shard, shards)
		}
		tl := &tallies[ev.Shard-1]
		switch ev.Verdict {
		case obs.VerdictPersisted:
			tl.persisted++
		case obs.VerdictRejected:
			tl.rejected++
		case obs.VerdictQueueDrop:
			tl.queueDrops++
		case obs.VerdictSinkError:
			tl.sinkErrors++
		}
	}
	for i := 0; i < shards; i++ {
		st := fleet.Server(i).Stats()
		tl := tallies[i]
		if st.Received != tl.persisted || st.Rejected != tl.rejected ||
			st.QueueDrops != tl.queueDrops || st.SinkErrors != tl.sinkErrors {
			t.Errorf("shard %d: counters %+v disagree with journal tally %+v", i+1, st, tl)
		}
		if st.Received != uint64(stores[i].Len()) {
			t.Errorf("shard %d: received %d but store holds %d", i+1, st.Received, stores[i].Len())
		}
	}
}
