package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tracedBytes encodes n sample reports into a complete binary stream.
func tracedBytes(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Submit(sampleReport(uint32(200+i), _t0.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecoveryScanCleanStream(t *testing.T) {
	data := tracedBytes(t, 7)
	res, err := ScanStream(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ScanStream: %v", err)
	}
	if res.Torn {
		t.Errorf("clean stream reported torn: %v", res.TailErr)
	}
	if res.Records != 7 {
		t.Errorf("Records = %d, want 7", res.Records)
	}
	if res.ValidBytes != int64(len(data)) {
		t.Errorf("ValidBytes = %d, want %d", res.ValidBytes, len(data))
	}
}

func TestRecoveryScanHeaderOnly(t *testing.T) {
	res, err := ScanStream(bytes.NewReader(tracedBytes(t, 0)))
	if err != nil {
		t.Fatalf("ScanStream: %v", err)
	}
	if res.Torn || res.Records != 0 || res.ValidBytes != 5 {
		t.Errorf("header-only stream: %+v", res)
	}
}

// TestRecoveryScanTornTails cuts a valid stream at every possible byte
// offset: each strict prefix must scan as torn (or clean at a record
// boundary) with ValidBytes on a real boundary — never an error, never
// a panic.
func TestRecoveryScanTornTails(t *testing.T) {
	data := tracedBytes(t, 3)
	full, err := ScanStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int64]bool{5: true, full.ValidBytes: true}
	// Reconstruct interior boundaries by scanning prefixes that end
	// exactly where a shorter scan said a record ends.
	for cut := 5; cut < len(data); cut++ {
		res, err := ScanStream(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		boundaries[res.ValidBytes] = true
		if res.ValidBytes > int64(cut) {
			t.Fatalf("cut %d: ValidBytes %d beyond stream", cut, res.ValidBytes)
		}
		if !res.Torn && res.ValidBytes != int64(cut) {
			t.Errorf("cut %d: clean scan stopped early at %d", cut, res.ValidBytes)
		}
	}
	// Header end plus three record ends (the last of which is the full
	// stream length, seeded above).
	if len(boundaries) != 4 {
		t.Errorf("saw %d distinct boundaries, want 4: %v", len(boundaries), boundaries)
	}
}

func TestRecoveryScanRejectsForeignStream(t *testing.T) {
	if _, err := ScanStream(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Error("foreign stream scanned without error")
	}
	// A short prefix of the real header is torn, not foreign.
	res, err := ScanStream(bytes.NewReader([]byte("MGL")))
	if err != nil {
		t.Fatalf("torn header: %v", err)
	}
	if !res.Torn || res.ValidBytes != 0 {
		t.Errorf("torn header scan: %+v", res)
	}
}

// TestRecoveryTornTail is the crash-restart path the serve daemon runs:
// a file cut mid-record is truncated back to its last intact record and
// then loads cleanly.
func TestRecoveryTornTail(t *testing.T) {
	data := tracedBytes(t, 5)
	path := filepath.Join(t.TempDir(), "torn.trace")
	// Cut the final record roughly in half.
	clean, err := ScanStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cut := (int64(len(data)) + prevBoundary(t, data, clean.ValidBytes)) / 2
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := RecoverFile(path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if !res.Recovered {
		t.Fatal("torn file not recovered")
	}
	if res.Records != 4 {
		t.Errorf("recovered %d records, want 4", res.Records)
	}
	if res.TruncatedBytes == 0 {
		t.Error("recovery truncated nothing")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store, err := LoadStore(f, 10*time.Minute)
	if err != nil {
		t.Fatalf("LoadStore after recovery: %v", err)
	}
	if store.Len() != 4 {
		t.Errorf("recovered file loads %d reports, want 4", store.Len())
	}

	// Recovery is idempotent: a second pass finds nothing to cut.
	again, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Recovered || again.TruncatedBytes != 0 {
		t.Errorf("second recovery modified a clean file: %+v", again)
	}
}

// prevBoundary returns the record boundary preceding end in data.
func prevBoundary(t *testing.T, data []byte, end int64) int64 {
	t.Helper()
	res, err := ScanStream(bytes.NewReader(data[:end-1]))
	if err != nil {
		t.Fatal(err)
	}
	return res.ValidBytes
}

func TestRecoveryTornHeaderTruncatesToZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stub.trace")
	if err := os.WriteFile(path, []byte("MGL"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverFile(path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if !res.Recovered || res.TruncatedBytes != 3 {
		t.Errorf("torn-header recovery: %+v", res)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("file is %d bytes after torn-header recovery, want 0", info.Size())
	}
}

func TestRecoveryRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notatrace.bin")
	content := []byte("this is some other program's file")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverFile(path); err == nil {
		t.Fatal("foreign file recovered without error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("foreign file was modified")
	}
}

func TestRecoveryCorruptInteriorRecord(t *testing.T) {
	data := tracedBytes(t, 6)
	clean, err := ScanStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last record's payload: 10 bytes of 0xFF where its time
	// varint lives is a guaranteed uvarint overflow, so the frame reads
	// fine but the record fails to decode.
	boundary := prevBoundary(t, data, clean.ValidBytes)
	_, varintLen := binary.Uvarint(data[boundary:])
	for i := 0; i < 10; i++ {
		data[boundary+int64(varintLen)+int64(i)] = 0xFF
	}
	res, err := ScanStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.Records != 5 || res.ValidBytes != boundary {
		t.Errorf("corrupt-tail scan: %+v (want torn at %d with 5 records)", res, boundary)
	}
}
