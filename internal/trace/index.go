//magellan:hotpath
package trace

import (
	"cmp"
	"slices"
	"time"

	"github.com/magellan-p2p/magellan/internal/isp"
	"github.com/magellan-p2p/magellan/internal/obs"
)

// Index is an immutable, columnar view of a Store's epochs, built once
// by Store.Seal. For every epoch it precomputes the deduplicated
// latest-by-peer report list sorted by address, the matching address
// column, and the sorted set of all visible peers (reporters plus their
// partners). Analyzers consume these as shared sub-slices, so assembling
// a per-epoch view costs no allocation and no re-sorting — the
// zero-rebuild contract behind core.Analyze's hot path.
//
// All slices returned by Index methods alias the index's backing arrays
// and must be treated as read-only.
type Index struct {
	interval time.Duration
	epochs   []int64       // ascending
	pos      map[int64]int // epoch → position in epochs

	reports []Report   // latest-by-peer, grouped by epoch, sorted by Addr
	addrs   []isp.Addr // addrs[i] == reports[i].Addr
	offsets []int      // epoch i's reports are reports[offsets[i]:offsets[i+1]]

	all    []isp.Addr // distinct visible peers per epoch, sorted
	allOff []int      // epoch i's peers are all[allOff[i]:allOff[i+1]]
}

// Seal builds (or returns the cached) Index over the store's current
// contents. The index is a consistent snapshot: reports submitted after
// Seal returns are not reflected in it, but the next Seal call detects
// the change and builds a fresh index. Sealing an unchanged store is
// O(1), which lets every analyzer call Seal independently and share one
// index.
func (s *Store) Seal() *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx != nil && s.idxCount == s.count {
		return s.idx
	}
	s.idx = buildIndex(s.interval, s.epochs, s.journal)
	s.idxCount = s.count
	return s.idx
}

// buildIndex does the one-time columnar precompute. Dedup keeps the
// last-submitted report per peer, matching Store.LatestByPeer. When a
// journal is attached it records the seal plane's verdicts: superseded
// for every report the latest-by-peer dedup replaced (in arrival order)
// and indexed for every report that made the index (in address order) —
// both deterministic, since epochs are walked sorted and each epoch's
// reports sit in arrival order.
func buildIndex(interval time.Duration, epochs map[int64][]Report, j *obs.Journal) *Index {
	keys := make([]int64, 0, len(epochs))
	total, maxLatest, maxVisible := 0, 0, 0
	for e, reports := range epochs {
		keys = append(keys, e)
		total += len(reports)
		// Size the per-epoch scratch buffers to the worst epoch up
		// front: maxLatest bounds the dedup buffer (before dedup),
		// maxVisible bounds reporters plus everyone on their partner
		// lists, so the loop below never grows either slice.
		visible := len(reports)
		for k := range reports {
			visible += len(reports[k].Partners)
		}
		maxLatest = max(maxLatest, len(reports))
		maxVisible = max(maxVisible, visible)
	}
	slices.Sort(keys)

	ix := &Index{
		interval: interval,
		epochs:   keys,
		pos:      make(map[int64]int, len(keys)),
		reports:  make([]Report, 0, total),
		addrs:    make([]isp.Addr, 0, total),
		offsets:  make([]int, len(keys)+1),
		allOff:   make([]int, len(keys)+1),
	}

	slot := make(map[isp.Addr]int32)
	latest := make([]Report, 0, maxLatest)
	all := make([]isp.Addr, 0, maxVisible)
	byAddr := func(a, b Report) int { return cmp.Compare(a.Addr, b.Addr) }
	for i, e := range keys {
		ix.pos[e] = i

		// Latest-by-peer dedup in arrival order, then sort by address.
		clear(slot)
		latest = latest[:0]
		for k := range epochs[e] {
			r := epochs[e][k]
			if n, ok := slot[r.Addr]; ok {
				j.Record(latest[n].Time.UnixNano(), obs.StageSeal, obs.VerdictSuperseded,
					journalID(&latest[n], interval))
				latest[n] = r
			} else {
				slot[r.Addr] = int32(len(latest))
				latest = append(latest, r)
			}
		}
		slices.SortFunc(latest, byAddr)
		ix.reports = append(ix.reports, latest...)
		for k := range latest {
			ix.addrs = append(ix.addrs, latest[k].Addr)
			j.Record(latest[k].Time.UnixNano(), obs.StageSeal, obs.VerdictIndexed,
				journalID(&latest[k], interval))
		}
		ix.offsets[i+1] = len(ix.reports)

		// All visible peers: reporters plus everyone on their partner
		// lists, sorted and deduplicated.
		all = all[:0]
		for j := range latest {
			all = append(all, latest[j].Addr)
			for _, p := range latest[j].Partners {
				all = append(all, p.Addr)
			}
		}
		slices.Sort(all)
		ix.all = append(ix.all, slices.Compact(all)...)
		ix.allOff[i+1] = len(ix.all)
	}
	return ix
}

// Interval returns the epoch width.
func (ix *Index) Interval() time.Duration { return ix.interval }

// NumEpochs returns the number of non-empty epochs.
func (ix *Index) NumEpochs() int { return len(ix.epochs) }

// Epochs returns the indexes of all non-empty epochs, ascending. The
// slice is a copy; callers may keep it.
func (ix *Index) Epochs() []int64 {
	return slices.Clone(ix.epochs)
}

// EpochStart returns the instant an epoch begins, in UTC.
func (ix *Index) EpochStart(epoch int64) time.Time {
	return time.Unix(0, epoch*int64(ix.interval)).UTC()
}

// Reports returns the epoch's latest-by-peer reports sorted by address
// (a shared sub-slice; read-only). Empty for unknown epochs.
func (ix *Index) Reports(epoch int64) []Report {
	i, ok := ix.pos[epoch]
	if !ok {
		return nil
	}
	return ix.reports[ix.offsets[i]:ix.offsets[i+1]]
}

// Reporters returns the epoch's reporting addresses in ascending order,
// aligned with Reports (a shared sub-slice; read-only).
func (ix *Index) Reporters(epoch int64) []isp.Addr {
	i, ok := ix.pos[epoch]
	if !ok {
		return nil
	}
	return ix.addrs[ix.offsets[i]:ix.offsets[i+1]]
}

// AllPeers returns every address visible in the epoch — reporters plus
// everyone on their partner lists — sorted ascending (a shared
// sub-slice; read-only).
func (ix *Index) AllPeers(epoch int64) []isp.Addr {
	i, ok := ix.pos[epoch]
	if !ok {
		return nil
	}
	return ix.all[ix.allOff[i]:ix.allOff[i+1]]
}
