package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/magellan-p2p/magellan/internal/faults"
)

// TestCodecBitIdenticalReencode is the strong form of the round-trip
// property: decoding and re-encoding a random valid report reproduces
// the original bytes exactly. Struct equality is not enough — the epoch
// store rewrites trace files, so a codec with two encodings for one
// report would silently change fingerprints.
func TestCodecBitIdenticalReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		orig := randomReport(rng)
		buf := AppendReport(nil, &orig)
		rep, err := DecodeReport(buf)
		if err != nil {
			t.Fatalf("iteration %d: DecodeReport: %v", i, err)
		}
		again := AppendReport(nil, &rep)
		if !bytes.Equal(buf, again) {
			t.Fatalf("iteration %d: re-encode differs:\n first %x\nsecond %x", i, buf, again)
		}
	}
}

// TestCodecStrictPrefixAlwaysErrors checks the decoder's torn-datagram
// contract across random reports: every strict prefix of a valid
// encoding fails with an error — never a panic, never a silent partial
// decode. This is what lets the trace server count truncated datagrams
// instead of crashing on them.
func TestCodecStrictPrefixAlwaysErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 100; i++ {
		orig := randomReport(rng)
		buf := AppendReport(nil, &orig)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := DecodeReport(buf[:cut]); err == nil {
				t.Fatalf("iteration %d: strict prefix of %d/%d bytes decoded without error", i, cut, len(buf))
			}
		}
	}
}

// TestCodecFaultShapedInputs runs the fault injector's byte manglers
// over valid encodings: torn tails and duplicated heads must error, and
// bit flips must never panic.
func TestCodecFaultShapedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 200; i++ {
		orig := randomReport(rng)
		buf := AppendReport(nil, &orig)

		if _, err := DecodeReport(faults.TornTail(rng, buf)); err == nil {
			t.Fatalf("iteration %d: torn tail decoded without error", i)
		}
		if _, err := DecodeReport(faults.DuplicateHead(buf, 8)); err == nil {
			t.Fatalf("iteration %d: duplicated head decoded without error", i)
		}
		// Bit flips may or may not decode; they must only fail cleanly.
		_, _ = DecodeReport(faults.FlipBits(rng, append([]byte(nil), buf...), 1+rng.Intn(4)))
	}
}
