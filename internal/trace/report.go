// Package trace implements the measurement pipeline of Sec. 3.2 of the
// paper: each stable peer (online ≥ 20 minutes) sends a UDP report to a
// standalone trace server every 10 minutes, carrying its IP address, the
// channel it watches, its buffer map, its total download/upload
// capacities, its instantaneous aggregate receiving/sending throughput,
// and its full partner list with per-partner segment counts.
//
// The package provides the report schema, a compact binary codec and a
// JSON-lines codec, an epoch-bucketed in-memory store that the analyzers
// consume, and a real UDP trace server/client pair so the pipeline can be
// exercised over actual sockets.
package trace

import (
	"errors"
	"fmt"
	"time"

	"github.com/magellan-p2p/magellan/internal/isp"
)

// DefaultReportInterval is the reporting period of the deployed client.
const DefaultReportInterval = 10 * time.Minute

// DefaultInitialDelay is how long a new peer waits before its first
// report, which is what makes reporters the "stable backbone" of the
// topology.
const DefaultInitialDelay = 20 * time.Minute

// PartnerRecord is one entry of a report's partner list: the partner's
// address and port, and the number of segments sent to and received from
// it since the previous report.
type PartnerRecord struct {
	Addr    isp.Addr `json:"addr"`
	Port    uint16   `json:"port"`
	SentSeg uint32   `json:"sentSeg"`
	RecvSeg uint32   `json:"recvSeg"`
}

// Report is one measurement report as received by the trace server.
type Report struct {
	// Time is the trace-server receipt time (virtual time in
	// simulations).
	Time time.Time `json:"time"`
	// Addr and Port identify the reporting peer; peers are identified by
	// IP address throughout the traces.
	Addr isp.Addr `json:"addr"`
	Port uint16   `json:"port"`
	// Channel is the channel the peer is watching.
	Channel string `json:"channel"`
	// UpKbps and DownKbps are the peer's estimated total capacities.
	UpKbps   float64 `json:"upKbps"`
	DownKbps float64 `json:"downKbps"`
	// RecvKbps and SentKbps are the instantaneous aggregate throughputs.
	RecvKbps float64 `json:"recvKbps"`
	SentKbps float64 `json:"sentKbps"`
	// BufferMap is the sliding-window occupancy bitmap (64 segments
	// ending at PlayPoint+63).
	BufferMap uint64 `json:"bufferMap"`
	// PlayPoint is the stream offset, in segments, of the window start.
	PlayPoint uint32 `json:"playPoint"`
	// Partners is the full partner list with per-partner segment counts.
	Partners []PartnerRecord `json:"partners"`
}

// Validate performs structural sanity checks on a decoded report.
func (r *Report) Validate() error {
	if r.Addr == 0 {
		return errors.New("trace: report with zero address")
	}
	if r.Channel == "" {
		return errors.New("trace: report with empty channel")
	}
	if r.Time.IsZero() {
		return errors.New("trace: report with zero time")
	}
	if len(r.Partners) > MaxPartnersPerReport {
		return fmt.Errorf("trace: report with %d partners exceeds limit %d",
			len(r.Partners), MaxPartnersPerReport)
	}
	return nil
}

// MaxPartnersPerReport bounds partner lists, protecting the server from
// malformed datagrams.
const MaxPartnersPerReport = 512

// Sink consumes reports. Implementations: Store (in-memory, for
// analysis), Writer (binary file), JSONLWriter, and Tee.
type Sink interface {
	Submit(Report) error
}

// Tee fans a report out to several sinks; the first error wins but all
// sinks are attempted.
type Tee []Sink

var _ Sink = Tee{}

// Submit implements Sink.
func (t Tee) Submit(r Report) error {
	var firstErr error
	for _, s := range t {
		if err := s.Submit(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Discard is a Sink that drops everything; useful for protocol-only
// simulations and benchmarks.
var Discard Sink = discard{}

type discard struct{}

func (discard) Submit(Report) error { return nil }
