package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/cfg"
	"github.com/magellan-p2p/magellan/internal/analysis/dataflow"
)

// build parses a single function and returns its CFG.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body, cfg.Options{})
}

// gen returns a transfer function that sets bit whenever the block
// contains a call to the named function, and clears it on a call to
// the kill name.
func genKill(genName, killName string, bit dataflow.Bits) func(*cfg.Block, dataflow.Bits) dataflow.Bits {
	return func(b *cfg.Block, in dataflow.Bits) dataflow.Bits {
		out := in
		for _, n := range b.Nodes {
			cfg.Visit(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case genName:
							out |= bit
						case killName:
							out &^= bit
						}
					}
				}
				return true
			})
		}
		return out
	}
}

// blockOf finds the block containing a call to name.
func blockOf(t *testing.T, g *cfg.Graph, name string) *cfg.Block {
	t.Helper()
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			cfg.Visit(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block contains a call to %s", name)
	return nil
}

func TestForwardBranchUnion(t *testing.T) {
	// gen() runs on one branch only; the may-analysis must report the
	// bit as set at the join.
	g := build(t, `package p
func f() {
	if cond() {
		gen()
	}
	after()
}`)
	in := dataflow.Forward(g, dataflow.Problem{Transfer: genKill("gen", "kill", 1)})
	if got := in[blockOf(t, g, "after").Index]; got != 1 {
		t.Errorf("in[after] = %b, want 1 (union over both branch paths)", got)
	}
}

func TestForwardKillOnAllPaths(t *testing.T) {
	g := build(t, `package p
func f() {
	gen()
	if cond() {
		kill()
	} else {
		kill()
	}
	after()
}`)
	in := dataflow.Forward(g, dataflow.Problem{Transfer: genKill("gen", "kill", 1)})
	if got := in[blockOf(t, g, "after").Index]; got != 0 {
		t.Errorf("in[after] = %b, want 0 (killed on every path)", got)
	}
}

func TestForwardLoopBackEdge(t *testing.T) {
	// The bit is generated before the loop; the loop body must observe
	// it on the first iteration and via the back-edge.
	g := build(t, `package p
func f() {
	gen()
	for i := 0; i < 4; i++ {
		body()
	}
	after()
}`)
	in := dataflow.Forward(g, dataflow.Problem{Transfer: genKill("gen", "kill", 1)})
	if got := in[blockOf(t, g, "body").Index]; got != 1 {
		t.Errorf("in[body] = %b, want 1", got)
	}
	if got := in[blockOf(t, g, "after").Index]; got != 1 {
		t.Errorf("in[after] = %b, want 1", got)
	}
}

func TestForwardLoopGenReachesOwnEntry(t *testing.T) {
	// A bit generated inside the loop body flows around the back-edge
	// into the body's own in-set (fixpoint, not single pass).
	g := build(t, `package p
func f() {
	for i := 0; i < 4; i++ {
		probe()
		gen()
	}
}`)
	in := dataflow.Forward(g, dataflow.Problem{Transfer: genKill("gen", "kill", 1)})
	if got := in[blockOf(t, g, "probe").Index]; got != 1 {
		t.Errorf("in[probe] = %b, want 1 via back-edge", got)
	}
}

func TestForwardEntryBits(t *testing.T) {
	g := build(t, `package p
func f() {
	after()
}`)
	in := dataflow.Forward(g, dataflow.Problem{Entry: 0b101, Transfer: genKill("gen", "kill", 2)})
	if got := in[blockOf(t, g, "after").Index]; got != 0b101 {
		t.Errorf("in[after] = %b, want entry bits 101", got)
	}
}

func TestForwardUnreachableStaysZero(t *testing.T) {
	g := build(t, `package p
func f() {
	gen()
	return
	dead()
}`)
	in := dataflow.Forward(g, dataflow.Problem{Transfer: genKill("gen", "kill", 1)})
	if got := in[blockOf(t, g, "dead").Index]; got != 0 {
		t.Errorf("in[dead] = %b, want 0 (unreachable)", got)
	}
}
