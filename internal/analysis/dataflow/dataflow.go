// Package dataflow is a small forward-dataflow solver over the cfg
// package's basic blocks. Facts are 64-bit sets; the join is union
// (may-analysis) or intersection (must-analysis); transfer functions
// are arbitrary monotone functions supplied by the analyzer, typically
// gen/kill over the block's nodes.
//
// The solver is a standard worklist iteration: deterministic (blocks
// are processed in index order) and guaranteed to terminate because
// the fact lattice is finite and transfer functions are required to be
// monotone.
package dataflow

import "github.com/magellan-p2p/magellan/internal/analysis/cfg"

// Bits is a set of up to 64 facts.
type Bits uint64

// Problem describes one forward-dataflow instance.
type Problem struct {
	// Entry is the fact set on entry to the function.
	Entry Bits

	// Transfer maps a block's in-set to its out-set. It must be
	// monotone: growing the in-set never shrinks the out-set.
	Transfer func(b *cfg.Block, in Bits) Bits

	// Meet joins the out-sets of a block's predecessors. Nil means
	// union (a fact holds if it holds on any path in).
	Meet func(a, b Bits) Bits
}

// Forward solves the problem and returns the in-set of every block,
// indexed by block index. Blocks unreachable from Entry keep the zero
// fact set.
func Forward(g *cfg.Graph, p Problem) []Bits {
	meet := p.Meet
	if meet == nil {
		meet = func(a, b Bits) Bits { return a | b }
	}
	n := len(g.Blocks)
	in := make([]Bits, n)
	out := make([]Bits, n)
	computed := make([]bool, n) // whether out[i] is meaningful yet

	in[g.Entry.Index] = p.Entry
	out[g.Entry.Index] = p.Transfer(g.Entry, p.Entry)
	computed[g.Entry.Index] = true

	onList := make([]bool, n)
	var work []*cfg.Block
	push := func(b *cfg.Block) {
		if !onList[b.Index] {
			onList[b.Index] = true
			work = append(work, b)
		}
	}
	for _, s := range g.Entry.Succs {
		push(s)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onList[b.Index] = false

		var newIn Bits
		first := true
		for _, pred := range b.Preds {
			if !computed[pred.Index] {
				continue
			}
			if first {
				newIn = out[pred.Index]
				first = false
			} else {
				newIn = meet(newIn, out[pred.Index])
			}
		}
		if b == g.Entry {
			if first {
				newIn = p.Entry
			} else {
				newIn = meet(newIn, p.Entry)
			}
		}
		newOut := p.Transfer(b, newIn)
		if computed[b.Index] && newIn == in[b.Index] && newOut == out[b.Index] {
			continue
		}
		in[b.Index] = newIn
		out[b.Index] = newOut
		computed[b.Index] = true
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in
}
