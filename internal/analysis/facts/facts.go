// Package facts is the cross-package fact store for Magellan's
// flow-aware analyzers. A fact is a bit attached to a function (keyed
// by its canonical path), computed while analyzing the package that
// defines the function and visible to every package analyzed after it
// — the analysis framework runs fact phases in import order, so by the
// time internal/sim is analyzed, the facts of internal/obs are already
// in the store. That is what makes laundering detectable: a helper in
// an unrestricted package that calls time.Now carries the wall-clock
// taint to its callers in restricted packages.
//
// Stores serialize to deterministic JSON, one package at a time, so
// fact sets can be exported alongside the `go list -export` build
// artifacts and re-imported without re-analyzing the defining package.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"io"
	"slices"
	"strings"
)

// Bits is a set of per-function facts.
type Bits uint32

const (
	// WallClock: the function transitively reads the wall clock
	// (time.Now, time.Since, ...).
	WallClock Bits = 1 << iota
	// GlobalRand: the function transitively draws from the global
	// math/rand (or math/rand/v2) generator.
	GlobalRand
	// Env: the function transitively reads the process environment.
	Env
	// NoExit: control flow can never reach the function's exit — it
	// neither returns nor terminates the process.
	NoExit
)

// Ambient is the taint mask: the bits that flow from callee to caller.
// NoExit deliberately does not propagate this way (a caller of a
// non-returning function is handled by CFG construction, not by
// tainting).
const Ambient = WallClock | GlobalRand | Env

// bitNames, in bit order.
var bitNames = []struct {
	bit  Bits
	name string
}{
	{WallClock, "wall-clock"},
	{GlobalRand, "global-rand"},
	{Env, "env"},
	{NoExit, "no-exit"},
}

// String renders the set as a comma-separated list of fact names.
func (b Bits) String() string {
	var parts []string
	for _, bn := range bitNames {
		if b&bn.bit != 0 {
			parts = append(parts, bn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// A Store maps canonical function keys to fact sets.
type Store struct {
	m map[string]Bits
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[string]Bits)} }

// KeyOf returns the canonical key of fn: "pkgpath.Name" for
// package-level functions, "pkgpath.(Recv).Name" for methods. The
// pointerness of the receiver is deliberately erased so a fact set on
// (*T).M and T.M coincide.
func KeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Add unions bits into key's fact set, reporting whether the set grew.
func (s *Store) Add(key string, bits Bits) bool {
	if key == "" || bits == 0 {
		return false
	}
	old := s.m[key]
	if old|bits == old {
		return false
	}
	s.m[key] = old | bits
	return true
}

// Get returns key's fact set (zero if absent).
func (s *Store) Get(key string) Bits { return s.m[key] }

// Len returns the number of keys with at least one fact.
func (s *Store) Len() int { return len(s.m) }

// packageOf extracts the package path from a canonical key.
func packageOf(key string) string {
	// The key is pkgpath.Name or pkgpath.(Recv).Name; the package path
	// ends at the last '/'-free dot before a '(' or the final dot.
	if i := strings.Index(key, ".("); i >= 0 {
		return key[:i]
	}
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[:i]
	}
	return key
}

// entry is the serialized form of one fact.
type entry struct {
	Func  string `json:"func"`
	Facts uint32 `json:"facts"`
	Names string `json:"names"`
}

// ExportPackage writes the facts of every function defined in pkgPath
// as deterministic JSON (entries sorted by key).
func (s *Store) ExportPackage(w io.Writer, pkgPath string) error {
	var entries []entry
	for k, b := range s.m {
		if packageOf(k) == pkgPath {
			entries = append(entries, entry{Func: k, Facts: uint32(b), Names: b.String()})
		}
	}
	slices.SortFunc(entries, func(a, b entry) int { return strings.Compare(a.Func, b.Func) })
	enc := json.NewEncoder(w)
	return enc.Encode(entries)
}

// Import merges previously exported facts into the store.
func (s *Store) Import(r io.Reader) error {
	var entries []entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("facts: decode: %w", err)
	}
	for _, e := range entries {
		s.Add(e.Func, Bits(e.Facts))
	}
	return nil
}

// seedFuncs maps ambient-source stdlib functions to the taint they
// introduce. Constructors (rand.New, rand.NewSource) stay clean: they
// are how the injected generator is built.
var seedFuncs = map[string]Bits{
	"time.Now": WallClock, "time.Since": WallClock, "time.Until": WallClock,
	"time.After": WallClock, "time.Tick": WallClock, "time.NewTimer": WallClock,
	"time.NewTicker": WallClock, "time.Sleep": WallClock, "time.AfterFunc": WallClock,

	"os.Getenv": Env, "os.LookupEnv": Env, "os.Environ": Env,
}

func init() {
	for _, name := range []string{
		"Int", "Intn", "IntN", "Int31", "Int31n", "Int32", "Int32N",
		"Int63", "Int63n", "Int64", "Int64N", "Uint32", "Uint32N",
		"Uint64", "Uint64N", "Uint", "UintN", "Float32", "Float64",
		"ExpFloat64", "NormFloat64", "Perm", "Shuffle", "Seed", "Read", "N",
	} {
		seedFuncs["math/rand."+name] = GlobalRand
		seedFuncs["math/rand/v2."+name] = GlobalRand
	}
}

// Seed returns the ambient taint a direct call to fn introduces, for
// the stdlib sources Magellan bans from its deterministic core. Only
// package-level functions seed taint: methods on *rand.Rand or
// injected clocks are the sanctioned alternative.
func Seed(fn *types.Func) Bits {
	if fn == nil || fn.Pkg() == nil {
		return 0
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return 0
	}
	return seedFuncs[fn.Pkg().Path()+"."+fn.Name()]
}
