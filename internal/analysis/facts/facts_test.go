package facts_test

import (
	"bytes"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/facts"
)

func TestBitsString(t *testing.T) {
	cases := []struct {
		bits facts.Bits
		want string
	}{
		{0, "none"},
		{facts.WallClock, "wall-clock"},
		{facts.WallClock | facts.Env, "wall-clock,env"},
		{facts.GlobalRand | facts.NoExit, "global-rand,no-exit"},
	}
	for _, tc := range cases {
		if got := tc.bits.String(); got != tc.want {
			t.Errorf("Bits(%b).String() = %q, want %q", tc.bits, got, tc.want)
		}
	}
}

func TestStoreAddGrowthSemantics(t *testing.T) {
	s := facts.NewStore()
	if !s.Add("p.F", facts.WallClock) {
		t.Error("first Add reported no growth")
	}
	if s.Add("p.F", facts.WallClock) {
		t.Error("re-adding the same bit reported growth")
	}
	if !s.Add("p.F", facts.Env) {
		t.Error("adding a new bit reported no growth")
	}
	if got := s.Get("p.F"); got != facts.WallClock|facts.Env {
		t.Errorf("Get = %v, want wall-clock,env", got)
	}
	if s.Add("", facts.WallClock) {
		t.Error("empty key must be ignored")
	}
	if s.Add("p.G", 0) {
		t.Error("zero bits must be ignored")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestKeyOf(t *testing.T) {
	pkg := types.NewPackage("example.com/internal/obs", "obs")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "Now", sig)
	if got := facts.KeyOf(fn); got != "example.com/internal/obs.Now" {
		t.Errorf("KeyOf(func) = %q", got)
	}

	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "Clock", nil), types.NewStruct(nil, nil), nil)
	for _, recvType := range []types.Type{named, types.NewPointer(named)} {
		recv := types.NewVar(token.NoPos, pkg, "c", recvType)
		msig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
		m := types.NewFunc(token.NoPos, pkg, "Read", msig)
		if got := facts.KeyOf(m); got != "example.com/internal/obs.(Clock).Read" {
			t.Errorf("KeyOf(method %T receiver) = %q, want pointer-erased key", recvType, got)
		}
	}

	if got := facts.KeyOf(nil); got != "" {
		t.Errorf("KeyOf(nil) = %q, want empty", got)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := facts.NewStore()
	s.Add("example.com/a.F", facts.WallClock)
	s.Add("example.com/a.G", facts.Env|facts.GlobalRand)
	s.Add("example.com/a.(T).M", facts.NoExit)
	s.Add("example.com/b.H", facts.WallClock)

	var buf bytes.Buffer
	if err := s.ExportPackage(&buf, "example.com/a"); err != nil {
		t.Fatalf("export: %v", err)
	}
	exported := buf.String()
	if strings.Contains(exported, "example.com/b.H") {
		t.Error("export leaked another package's facts")
	}

	dst := facts.NewStore()
	if err := dst.Import(strings.NewReader(exported)); err != nil {
		t.Fatalf("import: %v", err)
	}
	for key, want := range map[string]facts.Bits{
		"example.com/a.F":     facts.WallClock,
		"example.com/a.G":     facts.Env | facts.GlobalRand,
		"example.com/a.(T).M": facts.NoExit,
	} {
		if got := dst.Get(key); got != want {
			t.Errorf("after round trip, Get(%q) = %v, want %v", key, got, want)
		}
	}
	if dst.Get("example.com/b.H") != 0 {
		t.Error("import grew facts outside the exported package")
	}

	// Deterministic: exporting the same store twice is byte-identical.
	var buf2 bytes.Buffer
	if err := s.ExportPackage(&buf2, "example.com/a"); err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if buf2.String() != exported {
		t.Error("export is not deterministic")
	}
}

func TestSeed(t *testing.T) {
	timePkg := types.NewPackage("time", "time")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	now := types.NewFunc(token.NoPos, timePkg, "Now", sig)
	if got := facts.Seed(now); got != facts.WallClock {
		t.Errorf("Seed(time.Now) = %v, want wall-clock", got)
	}

	randPkg := types.NewPackage("math/rand/v2", "rand")
	intn := types.NewFunc(token.NoPos, randPkg, "IntN", sig)
	if got := facts.Seed(intn); got != facts.GlobalRand {
		t.Errorf("Seed(rand/v2.IntN) = %v, want global-rand", got)
	}

	osPkg := types.NewPackage("os", "os")
	getenv := types.NewFunc(token.NoPos, osPkg, "Getenv", sig)
	if got := facts.Seed(getenv); got != facts.Env {
		t.Errorf("Seed(os.Getenv) = %v, want env", got)
	}

	// Methods never seed: *rand.Rand is the sanctioned injected form.
	named := types.NewNamed(types.NewTypeName(token.NoPos, randPkg, "Rand", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, randPkg, "r", types.NewPointer(named))
	msig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	method := types.NewFunc(token.NoPos, randPkg, "IntN", msig)
	if got := facts.Seed(method); got != 0 {
		t.Errorf("Seed((*rand.Rand).IntN) = %v, want none", got)
	}

	constructor := types.NewFunc(token.NoPos, randPkg, "New", sig)
	if got := facts.Seed(constructor); got != 0 {
		t.Errorf("Seed(rand.New) = %v, want none (constructors are clean)", got)
	}
}
