package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the static callee of a call, or nil when the call is
// through a function value, a type conversion, or a builtin.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// ReceiverNamed returns the named type of fn's receiver, following one
// level of pointer indirection, or nil for package-level functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedFrom reports whether named is the type pkgPath.name.
func NamedFrom(named *types.Named, pkgPath, name string) bool {
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// InInternalSegment reports whether pkgPath contains an
// "internal/<name>" path segment for any of the given names. It is how
// analyzers scope themselves to the simulator core: fixture packages
// under any module can opt in by echoing the segment in their path.
func InInternalSegment(pkgPath string, names []string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		for _, name := range names {
			if segs[i+1] == name {
				return true
			}
		}
	}
	return false
}

// ContainsErrorResult reports whether t (a single type or a tuple)
// includes the built-in error type.
func ContainsErrorResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
