package analysis

import (
	"go/ast"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis/cfg"
	"github.com/magellan-p2p/magellan/internal/analysis/facts"
)

// exitFuncs are package-level stdlib functions that never return but do
// terminate the process (or, for Goexit, the goroutine).
var exitFuncs = map[string]bool{
	"os.Exit": true, "runtime.Goexit": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,
}

// CallTerminator returns a cfg CallTerm classifier: process-exiting
// stdlib calls are TermExits, and calls to functions carrying the
// facts.NoExit fact — local or imported — are TermHangs. The builtin
// panic is handled by the cfg package itself.
func CallTerminator(info *types.Info, store *facts.Store) func(*ast.CallExpr) cfg.TermKind {
	return func(call *ast.CallExpr) cfg.TermKind {
		fn := Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return cfg.TermNone
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			if exitFuncs[fn.Pkg().Path()+"."+fn.Name()] {
				return cfg.TermExits
			}
		}
		if store != nil && store.Get(facts.KeyOf(fn))&facts.NoExit != 0 {
			return cfg.TermHangs
		}
		return cfg.TermNone
	}
}
