// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory under <testdata>/src/<importpath>/ whose .go
// files may import the standard library. Lines expected to be flagged
// carry a trailing expectation comment:
//
//	rand.Intn(6) // want `math/rand`
//
// The backquoted (or quoted) string is a regexp that must match the
// diagnostic message reported on that line. Diagnostics without a
// matching expectation, and expectations without a diagnostic, both
// fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// Run loads the fixture packages together — fixtures may import one
// another, which is how cross-package fact propagation is tested — and
// applies the analyzer, reporting any mismatch between actual and
// expected diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	pkgs, err := load.Dirs(testdata+"/src", importPaths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors)
		}
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	// Attribute each diagnostic to the fixture whose files contain it,
	// then check every fixture's expectations in its own subtest.
	fileOwner := make(map[string]int)
	for i, pkg := range pkgs {
		for _, f := range pkg.GoFiles {
			fileOwner[f] = i
		}
	}
	perPkg := make([][]analysis.Diagnostic, len(pkgs))
	for _, d := range diags {
		pos := d.Position(pkgs[0].Fset)
		if i, ok := fileOwner[pos.Filename]; ok {
			perPkg[i] = append(perPkg[i], d)
		} else {
			t.Errorf("diagnostic outside fixture set: %s: %s", pos, d.Message)
		}
	}
	for i, pkg := range pkgs {
		pkg, i := pkg, i
		t.Run(pkg.ImportPath, func(t *testing.T) {
			t.Helper()
			checkExpectations(t, pkg, perPkg[i])
		})
	}
}

// expectation is one `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				lit := strings.TrimSpace(text[idx+len("// want "):])
				patterns, err := unquoteAll(lit)
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", pkg.Fset.Position(c.Pos()), lit, err)
				}
				for _, pattern := range patterns {
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pattern, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// unquoteAll parses a want payload: one or more space-separated
// double-quoted or backquoted Go string literals, one expectation
// each (a line carrying two findings writes two patterns).
func unquoteAll(lit string) ([]string, error) {
	var patterns []string
	rest := lit
	for rest != "" {
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("not a string literal at %q", rest)
		}
		pattern, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, pattern)
		rest = strings.TrimLeft(rest[len(quoted):], " \t")
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return patterns, nil
}
