// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory under <testdata>/src/<importpath>/ whose .go
// files may import the standard library. Lines expected to be flagged
// carry a trailing expectation comment:
//
//	rand.Intn(6) // want `math/rand`
//
// The backquoted (or quoted) string is a regexp that must match the
// diagnostic message reported on that line. Diagnostics without a
// matching expectation, and expectations without a diagnostic, both
// fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// Run loads each fixture package and applies the analyzer, reporting
// any mismatch between actual and expected diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			pkg, err := load.Dir(testdata+"/src/"+path, path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
			}
			diags, err := analysis.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s: %v", a.Name, err)
			}
			checkExpectations(t, pkg, diags)
		})
	}
}

// expectation is one `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				lit := strings.TrimSpace(text[idx+len("// want "):])
				pattern, err := unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want comment %q: %v", pkg.Fset.Position(c.Pos()), lit, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// unquote accepts a double-quoted or backquoted Go string literal.
func unquote(lit string) (string, error) {
	if len(lit) < 2 {
		return "", fmt.Errorf("not a string literal")
	}
	return strconv.Unquote(lit)
}
