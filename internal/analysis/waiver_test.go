package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// markAnalyzer reports one finding per call to a function with the
// given name — a controllable finding source for waiver-matching
// tests.
func markAnalyzer(name, funcName string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer flagging calls to " + funcName,
		Run: func(pass *analysis.Pass) error {
			for _, file := range pass.Files() {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == funcName {
						pass.Reportf(call.Pos(), "call to %s", funcName)
					}
					return true
				})
			}
			return nil
		},
	}
}

// loadSrc writes src as a one-file package in a temp dir and loads it.
func loadSrc(t *testing.T, src string) *load.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "w.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := load.Dir(dir, "example.com/waiverfx")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
	}
	return pkg
}

func runWith(t *testing.T, src string, analyzers ...*analysis.Analyzer) *analysis.Result {
	t.Helper()
	res, err := analysis.RunAll([]*load.Package{loadSrc(t, src)}, analyzers)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return res
}

// TestWaiverSuppressesBothFindingsOnOneLine: two findings by two
// analyzers on the same line, one directive naming both — both are
// suppressed and the directive counts two uses.
func TestWaiverSuppressesBothFindingsOnOneLine(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}
func beta()  {}

func f() {
	alpha(); beta() //magellan:allow alpha,beta — test double waiver
}
`, markAnalyzer("alpha", "alpha"), markAnalyzer("beta", "beta"))
	if len(res.Diags) != 0 {
		t.Errorf("%d findings survived, want 0: %v", len(res.Diags), res.Diags)
	}
	if len(res.Waivers) != 1 {
		t.Fatalf("%d waivers, want 1", len(res.Waivers))
	}
	if got := res.Waivers[0].Suppressed; got != 2 {
		t.Errorf("Suppressed = %d, want 2", got)
	}
}

// TestWaiverWrongAnalyzerName: a directive naming a different analyzer
// suppresses nothing — the finding survives and the directive is stale.
func TestWaiverWrongAnalyzerName(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}

func f() {
	alpha() //magellan:allow beta — names the wrong analyzer
}
`, markAnalyzer("alpha", "alpha"))
	if len(res.Diags) != 1 {
		t.Fatalf("%d findings, want 1 (wrong-name directive must not suppress)", len(res.Diags))
	}
	if len(res.Waivers) != 1 {
		t.Fatalf("%d waivers, want 1", len(res.Waivers))
	}
	if !res.Waivers[0].Stale() {
		t.Error("wrong-name directive is not reported stale")
	}
}

// TestWaiverAdjacentLinesChargeOwnDirectives: directives trailing two
// adjacent flagged lines each suppress their own line's finding — the
// first directive's spillover onto the next line must not starve the
// second directive.
func TestWaiverAdjacentLinesChargeOwnDirectives(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}

func f() {
	alpha() //magellan:allow alpha — first of two adjacent lines
	alpha() //magellan:allow alpha — second of two adjacent lines
}
`, markAnalyzer("alpha", "alpha"))
	if len(res.Diags) != 0 {
		t.Errorf("%d findings survived, want 0", len(res.Diags))
	}
	if len(res.Waivers) != 2 {
		t.Fatalf("%d waivers, want 2", len(res.Waivers))
	}
	for i, w := range res.Waivers {
		if w.Suppressed != 1 {
			t.Errorf("waiver %d at line %d: Suppressed = %d, want 1 each",
				i, w.Position.Line, w.Suppressed)
		}
	}
}

// TestWaiverOwnLineAboveCoversNextLine: the own-line directive style
// covers the statement directly below it.
func TestWaiverOwnLineAboveCoversNextLine(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}

func f() {
	//magellan:allow alpha — own-line style
	alpha()
}
`, markAnalyzer("alpha", "alpha"))
	if len(res.Diags) != 0 {
		t.Errorf("%d findings survived, want 0", len(res.Diags))
	}
	if len(res.Waivers) != 1 || res.Waivers[0].Suppressed != 1 {
		t.Fatalf("waivers = %+v, want one with Suppressed 1", res.Waivers)
	}
}

// TestWaiverDoesNotReachTwoLinesDown: coverage stops at the line
// directly below the directive.
func TestWaiverDoesNotReachTwoLinesDown(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}

func f() {
	//magellan:allow alpha — too far from the finding
	_ = 0
	alpha()
}
`, markAnalyzer("alpha", "alpha"))
	if len(res.Diags) != 1 {
		t.Errorf("%d findings, want 1 (directive two lines up must not cover)", len(res.Diags))
	}
	if len(res.Waivers) != 1 || !res.Waivers[0].Stale() {
		t.Fatalf("waivers = %+v, want one stale", res.Waivers)
	}
}

// TestWaiverAllKeyword: the "all" name suppresses any analyzer.
func TestWaiverAllKeyword(t *testing.T) {
	res := runWith(t, `package waiverfx

func alpha() {}
func beta()  {}

func f() {
	alpha(); beta() //magellan:allow all — blanket waiver
}
`, markAnalyzer("alpha", "alpha"), markAnalyzer("beta", "beta"))
	if len(res.Diags) != 0 {
		t.Errorf("%d findings survived under a blanket waiver", len(res.Diags))
	}
	if len(res.Waivers) != 1 || res.Waivers[0].Suppressed != 2 {
		t.Fatalf("waivers = %+v, want one with Suppressed 2", res.Waivers)
	}
}
