// Package lockspanfx exercises the lockspan analyzer: a mutex provably
// held (on any path) across a channel operation, network or file I/O,
// time.Sleep, WaitGroup.Wait, or a Submit/Seal ingest boundary is
// flagged. The cases cover the flow-sensitive upgrades over the old
// same-block heuristic: locks acquired in one branch are still held
// after the join, held-sets survive loop back-edges, and a deferred
// Unlock keeps the lock held to every exit.
package lockspanfx

import (
	"net"
	"os"
	"sync"
	"time"

	"example.com/internal/trace/spanfx"
)

// Guarded is a typical mutex-bearing aggregate.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// SendWhileLocked holds the mutex across a channel send: flagged.
func SendWhileLocked(g *Guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `g\.mu is held across a channel send`
	g.mu.Unlock()
}

// ReceiveWhileLocked holds the mutex across a channel receive: flagged.
func ReceiveWhileLocked(g *Guarded, ch chan int) int {
	g.mu.Lock()
	v := <-ch // want `g\.mu is held across a channel receive`
	g.mu.Unlock()
	return v
}

// UDPWhileLocked holds the mutex across a UDP read under a deferred
// unlock, the exact shape that stalls an ingest loop: flagged.
func UDPWhileLocked(g *Guarded, conn *net.UDPConn, buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, _, err := conn.ReadFromUDP(buf); err != nil { // want `g\.mu is held across network I/O \(ReadFromUDP\)`
		return
	}
	g.n++
}

// SleepWhileLocked holds the mutex across time.Sleep: flagged.
func SleepWhileLocked(g *Guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `g\.mu is held across time\.Sleep`
	g.mu.Unlock()
}

// BranchThenSend locks on one branch only; the send after the join is
// still reached with the lock held on that path. The old same-block
// heuristic missed this shape: flagged.
func BranchThenSend(g *Guarded, ch chan int, fast bool) {
	if !fast {
		g.mu.Lock()
	}
	ch <- g.n // want `g\.mu is held across a channel send`
	if !fast {
		g.mu.Unlock()
	}
}

// LoopCarried acquires the lock before the loop; every iteration's
// receive runs with it held, including via the back-edge: flagged.
func LoopCarried(g *Guarded, ch chan int) {
	g.mu.Lock()
	for i := 0; i < 4; i++ {
		g.n += <-ch // want `g\.mu is held across a channel receive`
	}
	g.mu.Unlock()
}

// SelectWhileLocked blocks in a select with no default: flagged.
func SelectWhileLocked(g *Guarded, a, b chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `g\.mu is held across a blocking select`
	case v := <-a:
		g.n = v
	case v := <-b:
		g.n = v
	}
}

// PollWhileLocked uses a default clause, so the select cannot block:
// clean.
func PollWhileLocked(g *Guarded, a chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-a:
		g.n = v
	default:
	}
}

// RangeChanWhileLocked drains a channel with the lock held: flagged.
func RangeChanWhileLocked(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range ch { // want `g\.mu is held across a channel range`
		g.n += v
	}
}

// FileWhileLocked reads a file with the lock held: flagged.
func FileWhileLocked(g *Guarded, path string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	data, err := os.ReadFile(path) // want `g\.mu is held across file I/O \(os\.ReadFile\)`
	if err != nil {
		return err
	}
	g.n = len(data)
	return nil
}

// WaitWhileLocked waits on a WaitGroup with the lock held: flagged.
func WaitWhileLocked(g *Guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want `g\.mu is held across WaitGroup\.Wait`
	g.mu.Unlock()
}

// SubmitWhileLocked crosses the ingest boundary with the lock held:
// flagged.
func SubmitWhileLocked(g *Guarded, rec *spanfx.Recorder) {
	g.mu.Lock()
	rec.Submit(g.n) // want `g\.mu is held across Recorder\.Submit`
	g.mu.Unlock()
}

// SealAfterUnlock crosses the ingest boundary only after releasing:
// clean.
func SealAfterUnlock(g *Guarded, rec *spanfx.Recorder) {
	g.mu.Lock()
	g.n = 0
	g.mu.Unlock()
	rec.Seal()
}

// ClosureWhileLocked blocks inside a function literal that takes its
// own lock; literals are analyzed as functions in their own right:
// flagged.
func ClosureWhileLocked(g *Guarded, ch chan int) func() {
	return func() {
		g.mu.Lock()
		ch <- g.n // want `g\.mu is held across a channel send`
		g.mu.Unlock()
	}
}

// UnlockFirst shrinks the critical section before blocking: clean.
func UnlockFirst(g *Guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

// LockedCompute does plain work under the lock: clean.
func LockedCompute(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n * 2
}

// InnerBlock takes and releases a lock inside a nested block; the send
// after the block runs with no lock held: clean.
func InnerBlock(g *Guarded, ch chan int) {
	if g != nil {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
	ch <- 1
}

// BothBranchesRelease unlocks on every path before the send: clean.
func BothBranchesRelease(g *Guarded, ch chan int, fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
	} else {
		g.n++
		g.mu.Unlock()
	}
	ch <- g.n
}
