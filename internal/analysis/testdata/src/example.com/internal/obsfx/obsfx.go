// Package obsfx is a stand-in for an unrestricted observability
// helper package. It legitimately reads ambient state — wall clock,
// global rand, environment — and exports those taints as cross-package
// facts. Nothing here is flagged; the findings appear at call sites in
// restricted packages.
package obsfx

import (
	"math/rand"
	"os"
	"time"
)

// StampMillis reads the wall clock directly: carries WallClock taint.
func StampMillis() int64 {
	return time.Now().UnixMilli()
}

// Elapsed launders the wall clock through one more hop: same taint,
// found by the package-local fixpoint.
func Elapsed(start int64) int64 {
	return StampMillis() - start
}

// Jitter draws from the global generator: carries GlobalRand taint.
func Jitter(n int) int {
	return rand.Intn(n)
}

// DebugDir reads the environment: carries Env taint.
func DebugDir() string {
	return os.Getenv("MAGELLAN_DEBUG_DIR")
}

// Scale is pure arithmetic: no taint, callable from anywhere.
func Scale(v, num, den int64) int64 {
	return v * num / den
}

// WithClock takes the clock as an injected dependency: no taint — this
// is the sanctioned pattern the analyzer steers callers toward.
func WithClock(now func() time.Time) int64 {
	return now().UnixMilli()
}
