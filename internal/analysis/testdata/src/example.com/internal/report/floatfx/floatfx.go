// Package floatfx (report flavor) exercises the floatcmp analyzer's
// scoping: internal/report is not a restricted segment, so float
// equality is legal here. No diagnostics expected.
package floatfx

// Equal is allowed outside internal/{graph,metrics}.
func Equal(a, b float64) bool {
	return a == b
}
