// Package spanfx is a stand-in for the measurement plane's ingest
// surface: Submit and Seal do I/O and take their own locks, so callers
// must never invoke them with a lock held. The lockspan analyzer keys
// on the internal/trace path segment of the receiver's package.
package spanfx

// Recorder mimics the trace collector's ingest API.
type Recorder struct {
	n int
}

// Submit ingests one report.
func (r *Recorder) Submit(v int) {
	r.n += v
}

// Seal closes the recorder's current epoch.
func (r *Recorder) Seal() {
	r.n = 0
}
