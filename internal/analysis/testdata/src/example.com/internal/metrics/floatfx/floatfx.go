// Package floatfx exercises the floatcmp analyzer inside a restricted
// package path (…/internal/metrics/…): equality between computed floats
// is flagged; sentinel comparisons against constants, ordered
// comparisons, and integer equality stay clean.
package floatfx

// Equal compares computed floats exactly: flagged.
func Equal(a, b float64) bool {
	return a == b // want `== between floating-point expressions`
}

// NotEqual is the negated form: flagged.
func NotEqual(a, b float64) bool {
	return a != b // want `!= between floating-point expressions`
}

// Narrow compares float32s: flagged.
func Narrow(a, b float32) bool {
	return a == b // want `== between floating-point expressions`
}

// Guard tests against a literal sentinel: exempt by design (exact-zero
// guards before division are well-defined).
func Guard(sum float64) float64 {
	if sum == 0 {
		return 0
	}
	return 1 / sum
}

// Tolerance is the sanctioned pattern: clean.
func Tolerance(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// Ints compare exactly without hazard: clean.
func Ints(a, b int) bool {
	return a == b
}
