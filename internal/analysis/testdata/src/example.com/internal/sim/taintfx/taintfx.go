// Package taintfx sits inside the restricted simulator core
// (internal/sim path segment): any call into an out-of-core function
// that transitively reads ambient state is flagged, even though the
// ambient read itself happens two packages away.
package taintfx

import (
	"time"

	"example.com/internal/obsfx"
)

// Tainted calls helpers that transitively read the wall clock, the
// global generator, and the environment: all flagged.
func Tainted(start int64) int64 {
	t := obsfx.StampMillis()          // want `call to obsfx\.StampMillis transitively reads ambient state \(wall-clock\)`
	t += obsfx.Elapsed(start)         // want `call to obsfx\.Elapsed transitively reads ambient state \(wall-clock\)`
	t += int64(obsfx.Jitter(10))      // want `call to obsfx\.Jitter transitively reads ambient state \(global-rand\)`
	t += int64(len(obsfx.DebugDir())) // want `call to obsfx\.DebugDir transitively reads ambient state \(env\)`
	return t
}

// localHop launders the taint through a package-local helper; the
// call into obsfx is the finding, attributed where the escape happens.
func localHop() int64 {
	return obsfx.StampMillis() // want `call to obsfx\.StampMillis transitively reads ambient state \(wall-clock\)`
}

// UseLocalHop calls a restricted-core function; the root cause is
// flagged inside localHop, not repeated here: clean at this site.
func UseLocalHop() int64 {
	return localHop()
}

// Pure calls an untainted helper: clean.
func Pure(v int64) int64 {
	return obsfx.Scale(v, 3, 2)
}

// Injected passes the clock explicitly; obsfx.WithClock carries no
// taint, and the func value itself is the sanctioned escape: clean
// here (the determinism pass polices the construction site).
func Injected(now func() time.Time) int64 {
	return obsfx.WithClock(now)
}
