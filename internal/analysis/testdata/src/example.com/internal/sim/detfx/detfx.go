// Package detfx exercises the determinism analyzer inside a restricted
// package path (…/internal/sim/…): ambient randomness, wall-clock time,
// and environment reads must all be flagged; the injected-generator
// pattern must stay clean.
package detfx

import (
	"math/rand"
	"os"
	"time"

	"github.com/magellan-p2p/magellan/internal/obs"
)

// Jitter draws from the global generator: forbidden here.
func Jitter() int {
	return rand.Intn(100) // want `math/rand\.Intn is nondeterministic`
}

// Stamp reads the wall clock: forbidden here.
func Stamp() time.Time {
	return time.Now() // want `time\.Now is nondeterministic`
}

// Elapsed measures wall-clock durations: forbidden here.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since is nondeterministic`
}

// Debug reads the process environment: forbidden here.
func Debug() bool {
	return os.Getenv("MAGELLAN_DEBUG") != "" // want `os\.Getenv is nondeterministic`
}

// AsValue references a forbidden function without calling it: the
// reference alone is enough to smuggle nondeterminism, so it is flagged.
var AsValue = rand.Float64 // want `math/rand\.Float64 is nondeterministic`

// Seeded is the sanctioned pattern: constructors stay legal because they
// are how the injected generator is built.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw consumes the injected generator: clean.
func Draw(r *rand.Rand) int {
	return r.Intn(100)
}

// Widen does arithmetic on time values without reading the clock: clean.
func Widen(t time.Time, d time.Duration) time.Time {
	return t.Add(2 * d)
}

// WallRecorder constructs a wall-clock-stamping journal: forbidden here —
// the flight recorder inside the core must stamp virtual instants.
func WallRecorder() *obs.Journal {
	return obs.NewWallJournal(64) // want `internal/obs\.NewWallJournal is nondeterministic`
}

// TickRecorder builds the tick-stamped journal: the sanctioned
// constructor, clean.
func TickRecorder() *obs.Journal {
	return obs.NewJournal(64)
}

// RecordLifecycle consumes an injected journal handle: clean (nil-safe
// no-op when the recorder is disabled).
func RecordLifecycle(j *obs.Journal, at int64) {
	j.Record(at, obs.StageEmit, obs.VerdictEmitted, obs.ReportID{})
}
