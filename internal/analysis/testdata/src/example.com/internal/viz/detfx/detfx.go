// Package detfx (viz flavor) exercises the determinism analyzer's
// scoping: internal/viz is not a restricted segment, so the very calls
// flagged in internal/sim are legal here. No diagnostics expected.
package detfx

import (
	"math/rand"
	"os"
	"time"
)

// Stamp may read the wall clock outside the simulator core.
func Stamp() time.Time {
	return time.Now()
}

// Jitter may use the global generator outside the simulator core.
func Jitter() int {
	return rand.Intn(100) + len(os.Getenv("HOME"))
}
