// Package taintfx (viz flavor) lives outside the restricted core:
// identical calls into tainted helpers are legal here, because the
// analysis plane may read wall clocks and environments freely.
package taintfx

import "example.com/internal/obsfx"

// Stamp calls the same tainted helper the sim fixture does: clean,
// because internal/viz is not a restricted segment.
func Stamp() int64 {
	return obsfx.StampMillis()
}

// Noise is likewise clean outside the core.
func Noise(n int) int {
	return obsfx.Jitter(n)
}
