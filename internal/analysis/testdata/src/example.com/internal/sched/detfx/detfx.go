// Package detfx exercises the determinism analyzer inside the calendar
// queue's package path (…/internal/sched/…): the scheduler core orders
// every event in the run, so ambient randomness and wall-clock reads
// there would silently break trace reproducibility.
package detfx

import (
	"math/rand"
	"time"
)

// SpreadBucket draws from the global generator: forbidden here.
func SpreadBucket() int {
	return rand.Intn(64) // want `math/rand\.Intn is nondeterministic`
}

// WallWidth sizes a bucket from the wall clock: forbidden here.
func WallWidth() time.Time {
	return time.Now() // want `time\.Now is nondeterministic`
}

// VirtualWidth is the sanctioned pattern: widths derive from virtual
// timestamps already in the queue, never from a clock.
func VirtualWidth(lo, hi int64, n int) int64 {
	if n < 2 {
		return 1
	}
	return (hi - lo) / int64(n-1)
}
