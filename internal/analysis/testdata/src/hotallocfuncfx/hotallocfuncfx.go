// Package hotallocfuncfx exercises the function-level
// //magellan:hotpath directive: only the tagged function is checked;
// identical allocation patterns in untagged siblings stay silent.
package hotallocfuncfx

import "fmt"

// HotEncode is on the per-tick path.
//
//magellan:hotpath
func HotEncode(ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%d", id)) // want `append to out grows an unpreallocated slice` `fmt\.Sprintf allocates on every loop iteration`
	}
	return out
}

// ColdEncode does the same work off the hot path: untagged, clean.
func ColdEncode(ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%d", id))
	}
	return out
}
