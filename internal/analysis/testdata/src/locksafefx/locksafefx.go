// Package locksafefx exercises the locksafe analyzer: lock-bearing
// values copied as parameters, receivers, assignments, range values, or
// call arguments are flagged. Pointer passing stays clean. The
// held-across-blocking cases live in the lockspanfx fixture, which
// exercises the flow-sensitive lockspan analyzer.
package locksafefx

import "sync"

// Guarded is a typical mutex-bearing aggregate.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex into the callee: flagged.
func ByValue(mu sync.Mutex) { // want `parameter copies sync\.Mutex`
	mu.Lock()
}

// ValueReceiver copies the whole aggregate on every call: flagged.
func (g Guarded) ValueReceiver() int { // want `receiver copies`
	return g.n
}

// CopyStruct copies a lock-bearing struct out of a pointer: flagged.
func CopyStruct(g *Guarded) int {
	cp := *g // want `assignment copies`
	return cp.n
}

// RangeCopies iterates lock-bearing values by value: flagged.
func RangeCopies(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies`
		total += g.n
	}
	return total
}

func sink(g Guarded) int { // want `parameter copies`
	return g.n
}

// CallByValue passes the aggregate by value at the call site: flagged.
func CallByValue(g *Guarded) int {
	return sink(*g) // want `call passes .* by value`
}

// ByPointer is the sanctioned form: clean.
func ByPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// PointerRange iterates by pointer, never copying the aggregate: clean.
func PointerRange(gs []*Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
