// Package locksafefx exercises the locksafe analyzer: lock-bearing
// values copied as parameters, receivers, assignments, range values, or
// call arguments are flagged, as are mutexes held across blocking
// channel/network operations. Pointer passing and short critical
// sections stay clean.
package locksafefx

import (
	"net"
	"sync"
	"time"
)

// Guarded is a typical mutex-bearing aggregate.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex into the callee: flagged.
func ByValue(mu sync.Mutex) { // want `parameter copies sync\.Mutex`
	mu.Lock()
}

// ValueReceiver copies the whole aggregate on every call: flagged.
func (g Guarded) ValueReceiver() int { // want `receiver copies`
	return g.n
}

// CopyStruct copies a lock-bearing struct out of a pointer: flagged.
func CopyStruct(g *Guarded) int {
	cp := *g // want `assignment copies`
	return cp.n
}

// RangeCopies iterates lock-bearing values by value: flagged.
func RangeCopies(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies`
		total += g.n
	}
	return total
}

func sink(g Guarded) int { // want `parameter copies`
	return g.n
}

// CallByValue passes the aggregate by value at the call site: flagged.
func CallByValue(g *Guarded) int {
	return sink(*g) // want `call passes .* by value`
}

// ByPointer is the sanctioned form: clean.
func ByPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// SendWhileLocked holds the mutex across a channel send: flagged.
func SendWhileLocked(g *Guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `g\.mu is held across a channel send`
	g.mu.Unlock()
}

// ReceiveWhileLocked holds the mutex across a channel receive: flagged.
func ReceiveWhileLocked(g *Guarded, ch chan int) int {
	g.mu.Lock()
	v := <-ch // want `g\.mu is held across a channel receive`
	g.mu.Unlock()
	return v
}

// UDPWhileLocked holds the mutex across a UDP read, the exact shape
// that stalls a trace-server ingest loop: flagged.
func UDPWhileLocked(g *Guarded, conn *net.UDPConn, buf []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, _, err := conn.ReadFromUDP(buf); err != nil { // want `g\.mu is held across network I/O \(ReadFromUDP\)`
		return
	}
	g.n++
}

// SleepWhileLocked holds the mutex across time.Sleep: flagged.
func SleepWhileLocked(g *Guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `g\.mu is held across time\.Sleep`
	g.mu.Unlock()
}

// UnlockFirst shrinks the critical section before blocking: clean.
func UnlockFirst(g *Guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

// LockedCompute does plain work under the lock: clean.
func LockedCompute(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n * 2
}

// InnerBlock takes and releases a lock inside a nested block; the send
// after the block runs with no lock held: clean.
func InnerBlock(g *Guarded, ch chan int) {
	if g != nil {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
	ch <- 1
}
