// Package goroleakdepfx is the cross-package half of the goroleak
// fixture: it defines functions with and without a reachable stop
// path. Nothing is reported here — the NoExit facts it publishes are
// consumed at the `go` statements in package goroleakfx.
package goroleakdepfx

// Forever spins with no stop path: publishes the NoExit fact.
func Forever(work func()) {
	for {
		work()
	}
}

// ForeverWrapped only calls Forever; the fixpoint marks it NoExit too.
func ForeverWrapped(work func()) {
	ForeverWrapped2(work)
}

// ForeverWrapped2 is one more hop for the package-local fixpoint.
func ForeverWrapped2(work func()) {
	Forever(work)
}

// Bounded drains a channel and returns when it closes: has a stop
// path, no fact.
func Bounded(ch chan int, work func(int)) {
	for v := range ch {
		work(v)
	}
}

// Stoppable observes a stop channel: has a stop path, no fact.
func Stoppable(stop chan struct{}, work func()) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}
