// Package hotallocfx exercises the hotalloc analyzer inside a
// file-level //magellan:hotpath scope: per-iteration allocation —
// growth appends, fmt.Sprint*, escaping closures — is flagged inside
// loops; preallocated appends, hoisted formatting, and
// immediately-invoked literals stay clean.
//
//magellan:hotpath
package hotallocfx

import (
	"fmt"
	"strconv"
)

// GrowAppend appends into an unpreallocated slice: flagged.
func GrowAppend(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v*2) // want `append to out grows an unpreallocated slice`
	}
	return out
}

// GrowEmptyLiteral starts from an empty literal: flagged.
func GrowEmptyLiteral(in []int) []int {
	out := []int{}
	for _, v := range in {
		out = append(out, v) // want `append to out grows an unpreallocated slice`
	}
	return out
}

// GrowZeroMake starts from make with no capacity: flagged.
func GrowZeroMake(in []int) []int {
	out := make([]int, 0)
	for _, v := range in {
		out = append(out, v) // want `append to out grows an unpreallocated slice`
	}
	return out
}

// PreallocAppend sizes the backing array up front: clean.
func PreallocAppend(in []int) []int {
	out := make([]int, 0, len(in))
	for _, v := range in {
		out = append(out, v*2)
	}
	return out
}

// SprintfPerIteration formats inside the loop: flagged.
func SprintfPerIteration(ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("peer-%d", id)) // want `fmt\.Sprintf allocates on every loop iteration`
	}
	return out
}

// StrconvPerIteration uses the allocation-light primitive: clean.
func StrconvPerIteration(ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, "peer-"+strconv.Itoa(id))
	}
	return out
}

// ClosurePerIteration hands a fresh closure to a sink every pass:
// flagged.
func ClosurePerIteration(in []int, sink func(func() int)) {
	for _, v := range in {
		sink(func() int { return v }) // want `closure allocated per loop iteration`
	}
}

// HoistedClosure allocates the closure once, outside the loop: clean.
func HoistedClosure(in []int, sink func(func(int) int)) {
	double := func(v int) int { return v * 2 }
	for range in {
		sink(double)
	}
}

// ImmediateClosure invokes the literal on the spot; it does not
// outlive the iteration: clean.
func ImmediateClosure(in []int) int {
	total := 0
	for _, v := range in {
		total += func() int { return v * v }()
	}
	return total
}

// InnerFresh builds a scratch slice per iteration; sizing it is a
// different decision and rule 1 stays quiet: clean.
func InnerFresh(in [][]int) int {
	total := 0
	for _, row := range in {
		var scratch []int
		scratch = append(scratch, row...)
		total += len(scratch)
	}
	return total
}

// OutsideLoop formats and appends outside any loop: clean.
func OutsideLoop(id int) string {
	return fmt.Sprintf("peer-%d", id)
}
