// Package maporderfx exercises the maporder analyzer: emission inside
// map iteration and unsorted key collection are flagged; the
// collect-sort-emit pattern and slice iteration stay clean.
package maporderfx

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// EmitUnsorted writes rows straight out of map iteration: flagged.
func EmitUnsorted(w io.Writer, shares map[string]float64) {
	for name, v := range shares {
		fmt.Fprintf(w, "%s,%g\n", name, v) // want `fmt\.Fprintf inside iteration over a map`
	}
}

// ConcatUnsorted builds a string in map order: flagged even though the
// builder itself cannot fail.
func ConcatUnsorted(parts map[string]string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(p) // want `method WriteString inside iteration over a map`
	}
	return sb.String()
}

// BuildUnsorted collects keys but never sorts them: flagged.
func BuildUnsorted(shares map[string]float64) []string {
	var names []string
	for name := range shares {
		names = append(names, name) // want `names accumulates map keys`
	}
	return names
}

// BuildSorted is the sanctioned pattern: collect, then sort, then use.
func BuildSorted(shares map[string]float64) []string {
	names := make([]string, 0, len(shares))
	for name := range shares {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EmitSorted emits through the sorted-keys pattern: clean end to end.
func EmitSorted(w io.Writer, shares map[string]float64) error {
	keys := make([]string, 0, len(shares))
	for k := range shares {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s,%g\n", k, shares[k]); err != nil {
			return err
		}
	}
	return nil
}

// EmitSlice ranges a slice, not a map: clean.
func EmitSlice(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

// Aggregate folds map values commutatively without emission: clean.
func Aggregate(shares map[string]float64) float64 {
	total := 0.0
	for _, v := range shares {
		total += v
	}
	return total
}
