// Package brokenfx deliberately fails to type-check: it is the
// regression fixture pinning magellan-vet's refusal to analyze broken
// packages (exit 2, no findings printed). It lives under testdata so
// ./... wildcards never see it; the driver test loads it by explicit
// path.
package brokenfx

// Mismatched returns a string where an int is promised.
func Mismatched() int {
	return "not an int"
}
