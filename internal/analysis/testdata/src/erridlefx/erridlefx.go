// Package erridlefx exercises the erridle analyzer: bare calls and
// all-blank assignments that drop errors are flagged; handled errors,
// the infallible-writer allowlist, defer Close, and the
// //magellan:allow directive stay clean.
package erridlefx

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func fallible() error { return nil }

func fallibleVal() (int, error) { return 0, nil }

// Bare discards the call's only result: flagged.
func Bare() {
	fallible() // want `fallible returns an error that is silently discarded`
}

// Blank discards results into the blank identifier: flagged.
func Blank() {
	_ = fallible()       // want `error result of erridlefx\.fallible is discarded`
	_, _ = fallibleVal() // want `error result of erridlefx\.fallibleVal is discarded`
}

// Handled is the sanctioned pattern: clean.
func Handled() error {
	if err := fallible(); err != nil {
		return err
	}
	n, err := fallibleVal()
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return err
}

// Allowlisted calls cannot fail (or are best-effort diagnostics): clean.
func Allowlisted() string {
	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(&sb, "%d", 1)
	fmt.Fprintln(os.Stderr, "diagnostic")
	fmt.Println("diagnostic")
	h := fnv.New64a()
	h.Write([]byte("payload"))
	_, _ = h.Write([]byte("payload"))
	return sb.String()
}

// DeferPatterns: defer Close is idiomatic and clean; deferring any other
// error-returning call is flagged.
func DeferPatterns(f *os.File) {
	defer f.Close()
	defer fallible() // want `fallible returns an error that is silently discarded`
}

// Directive shows the visible, reviewable escape hatch: clean.
func Directive() {
	fallible() //magellan:allow erridle — best-effort in this fixture
}
