// Package goroleakfx exercises the goroleak analyzer: goroutines whose
// body can never reach its exit — no return, no closing channel, no
// observed stop signal on any control-flow path — are flagged, both
// for function literals and for named callees whose NoExit fact
// crossed a package boundary.
package goroleakfx

import (
	"os"

	"goroleakdepfx"
)

// SpinLoop launches a bare busy loop: flagged.
func SpinLoop(work func()) {
	go func() { // want `goroutine body has no reachable stop path`
		for {
			work()
		}
	}()
}

// EmptySelect blocks forever on select{}: flagged.
func EmptySelect() {
	go func() { // want `goroutine body has no reachable stop path`
		select {}
	}()
}

// CrossPackage launches a dependency's non-returning function: flagged
// via the imported NoExit fact.
func CrossPackage(work func()) {
	go goroleakdepfx.Forever(work) // want `goroutine runs goroleakdepfx\.Forever, which can never return`
}

// CrossPackageWrapped reaches the same loop through two wrappers: the
// fact fixpoint still marks the entry point: flagged.
func CrossPackageWrapped(work func()) {
	go goroleakdepfx.ForeverWrapped(work) // want `goroutine runs goroleakdepfx\.ForeverWrapped, which can never return`
}

// localForever can never return; launching it is flagged via the
// package-local fact.
func localForever(work func()) {
	for {
		work()
	}
}

// LocalNamed launches the local non-returning function: flagged.
func LocalNamed(work func()) {
	go localForever(work) // want `goroutine runs goroleakfx\.localForever, which can never return`
}

// TailHang calls a non-returning function as its last act, so it is
// itself non-returning; the CFG severs fall-through after the call:
// flagged.
func TailHang(work func()) {
	go func() { // want `goroutine body has no reachable stop path`
		goroleakdepfx.Forever(work)
	}()
}

// StopChannel observes a stop signal: clean.
func StopChannel(work func()) (stop chan struct{}) {
	stop = make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
	return stop
}

// DrainRange ends when the channel closes: clean.
func DrainRange(ch chan int, work func(int)) {
	go func() {
		for v := range ch {
			work(v)
		}
	}()
}

// BoundedCallee launches a function with a stop path: clean.
func BoundedCallee(ch chan int, work func(int)) {
	go goroleakdepfx.Bounded(ch, work)
}

// ConditionalReturn has a path out through the condition: clean.
func ConditionalReturn(done func() bool, work func()) {
	go func() {
		for {
			if done() {
				return
			}
			work()
		}
	}()
}

// ExitingLoop ends the process on a condition; os.Exit terminates, so
// the body has a stop path: clean.
func ExitingLoop(fatal func() bool, work func()) {
	go func() {
		for {
			if fatal() {
				os.Exit(1)
			}
			work()
		}
	}()
}
