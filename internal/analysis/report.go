// Machine-readable emitters and the findings baseline: the JSON report
// is what CI archives, SARIF is what code-review UIs ingest, and the
// baseline lets a new analyzer land strict — existing findings are
// recorded and suppressed while new ones still fail the build.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// A Finding is one diagnostic in position-resolved, serializable form.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Findings resolves diagnostics into serializable findings with paths
// relative to root (when possible).
func Findings(diags []Diagnostic, pkgs []*load.Package, root string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		out = append(out, Finding{
			File:     name,
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// jsonReport is the shape of `magellan-vet -json` output.
type jsonReport struct {
	Tool     string    `json:"tool"`
	Findings []Finding `json:"findings"`
}

// WriteJSON emits the findings as a single JSON document.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if findings == nil {
		findings = []Finding{}
	}
	return enc.Encode(jsonReport{Tool: "magellan-vet", Findings: findings})
}

// sarif 2.1.0 skeleton, the minimum a viewer needs.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string            `json:"id"`
	ShortDesc map[string]string `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string            `json:"ruleId"`
	Level     string            `json:"level"`
	Message   map[string]string `json:"message"`
	Locations []sarifLocation   `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log. Analyzer docs
// become rule descriptions.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDesc: map[string]string{"text": a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: map[string]string{"text": f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "magellan-vet", Rules: rules}}, Results: results}},
	})
}

// A Baseline is a recorded set of accepted findings. Entries match on
// file, analyzer, and message — deliberately not on line number, so
// unrelated edits that shift a file do not resurrect baselined
// findings.
type Baseline struct {
	entries map[baselineKey]bool
}

type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

// baselineEntry is the serialized form.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{entries: make(map[baselineKey]bool, len(entries))}
	for _, e := range entries {
		b.entries[baselineKey{File: e.File, Analyzer: e.Analyzer, Message: e.Message}] = true
	}
	return b, nil
}

// WriteBaseline records findings to path, sorted and deduplicated.
func WriteBaseline(path string, findings []Finding) error {
	seen := make(map[baselineKey]bool, len(findings))
	entries := make([]baselineEntry, 0, len(findings))
	for _, f := range findings {
		k := baselineKey{File: f.File, Analyzer: f.Analyzer, Message: f.Message}
		if seen[k] {
			continue
		}
		seen[k] = true
		entries = append(entries, baselineEntry{File: f.File, Analyzer: f.Analyzer, Message: f.Message})
	}
	slices.SortFunc(entries, func(a, b baselineEntry) int {
		if a.File != b.File {
			return strings.Compare(a.File, b.File)
		}
		if a.Analyzer != b.Analyzer {
			return strings.Compare(a.Analyzer, b.Analyzer)
		}
		return strings.Compare(a.Message, b.Message)
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Covers reports whether f is in the baseline.
func (b *Baseline) Covers(f Finding) bool {
	if b == nil {
		return false
	}
	return b.entries[baselineKey{File: f.File, Analyzer: f.Analyzer, Message: f.Message}]
}

// Filter splits findings into new (not baselined) and accepted.
func (b *Baseline) Filter(findings []Finding) (fresh, accepted []Finding) {
	for _, f := range findings {
		if b.Covers(f) {
			accepted = append(accepted, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, accepted
}
