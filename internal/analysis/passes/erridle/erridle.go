// Package erridle flags discarded error returns: bare call statements
// whose result set includes an error, assignments that send every
// result to the blank identifier, and deferred error-returning calls.
// A measurement pipeline that drops errors silently under-counts — the
// one thing Magellan's ingest path must never do.
//
// A small allowlist covers calls that cannot fail or are best-effort by
// convention: hash.Hash writes, strings.Builder/bytes.Buffer methods,
// fmt printing to stdout/stderr or to an infallible builder, and
// `defer Close()`. Everything else needs handling or an explicit
// //magellan:allow erridle directive.
package erridle

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the discarded-error checker.
var Analyzer = &analysis.Analyzer{
	Name: "erridle",
	Doc: "flag bare calls and all-blank assignments that discard an error " +
		"result, outside a small infallible/best-effort allowlist",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkCall(pass, info, call, false)
				}
			case *ast.DeferStmt:
				checkCall(pass, info, n.Call, true)
			case *ast.AssignStmt:
				checkAssign(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// checkCall reports a call statement that discards an error result.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, deferred bool) {
	if !analysis.ContainsErrorResult(resultType(info, call)) {
		return
	}
	if allowed(info, call, deferred) {
		return
	}
	pass.Reportf(call.Pos(), "%s returns an error that is silently discarded; "+
		"handle it or annotate with //magellan:allow erridle", calleeName(info, call))
}

// checkAssign reports assignments whose left side is entirely blank and
// whose right side produces at least one error.
func checkAssign(pass *analysis.Pass, info *types.Info, assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok || ident.Name != "_" {
			return
		}
	}
	for _, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if !analysis.ContainsErrorResult(resultType(info, call)) {
			continue
		}
		if allowed(info, call, false) {
			continue
		}
		pass.Reportf(assign.Pos(), "error result of %s is discarded into the blank "+
			"identifier; handle it or annotate with //magellan:allow erridle",
			calleeName(info, call))
	}
}

func resultType(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	return tv.Type
}

// allowed implements the infallible/best-effort allowlist.
func allowed(info *types.Info, call *ast.CallExpr, deferred bool) bool {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return true // dynamic call through a func value: out of scope
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		if deferred && fn.Name() == "Close" {
			return true // defer f.Close() on a read path is idiomatic
		}
		// Judge by the receiver expression's static type, not the
		// method's declaring type: h.Write on a hash.Hash64 resolves to
		// (io.Writer).Write through embedding, but what matters is that
		// the receiver is a hash.
		recv := receiverNamed(info, call)
		if recv == nil {
			return false
		}
		if pkg := recv.Obj().Pkg(); pkg != nil && pkg.Path() == "hash" {
			return true // hash.Hash writes are documented never to fail
		}
		return analysis.NamedFrom(recv, "strings", "Builder") ||
			analysis.NamedFrom(recv, "bytes", "Buffer") // infallible in-memory writers
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if strings.HasPrefix(name, "Print") {
		return true // stdout diagnostics are best-effort
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return infallibleWriter(info, call.Args[0])
	}
	return false
}

// receiverNamed resolves the static named type of a method call's
// receiver expression, following one pointer indirection.
func receiverNamed(info *types.Info, call *ast.CallExpr) *types.Named {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection := info.Selections[sel]
	if selection == nil {
		return nil
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// infallibleWriter reports whether the fmt.Fprint* destination is an
// in-memory builder/buffer or the process's stdout/stderr.
func infallibleWriter(info *types.Info, dst ast.Expr) bool {
	if sel, ok := ast.Unparen(dst).(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := info.Types[dst]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return analysis.NamedFrom(named, "strings", "Builder") ||
		analysis.NamedFrom(named, "bytes", "Buffer")
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return "call"
	}
	if recv := analysis.ReceiverNamed(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
