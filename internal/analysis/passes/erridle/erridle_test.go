package erridle_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/erridle"
)

func TestErrIdle(t *testing.T) {
	analysistest.Run(t, "../../testdata", erridle.Analyzer, "erridlefx")
}
