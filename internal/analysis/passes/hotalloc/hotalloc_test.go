package hotalloc_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "../../testdata", hotalloc.Analyzer,
		"hotallocfx", "hotallocfuncfx")
}
