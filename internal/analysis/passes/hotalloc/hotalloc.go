// Package hotalloc polices per-iteration allocation in code that has
// declared itself hot. A file (comment anywhere in the file, by
// convention above the package clause) or a single function (in its
// doc comment) opts in with the directive:
//
//	//magellan:hotpath
//
// Inside every loop of a tagged scope, three allocation patterns are
// flagged — the ones that undid the PR 2 zero-alloc graph kernels most
// often in review:
//
//  1. append to a slice declared outside the loop without capacity
//     (`var s []T`, `s := []T{}`, `s := make([]T, 0)`): each growth
//     reallocates; size the make with an explicit capacity;
//  2. fmt.Sprintf and friends: every call allocates the formatted
//     string (and boxes the arguments); format once outside the loop
//     or use strconv/append primitives;
//  3. closures that escape the iteration (assigned, passed as an
//     argument, deferred, or launched as a goroutine): each iteration
//     allocates a fresh closure (and often moves captured variables to
//     the heap); hoist the closure out of the loop or pass state
//     explicitly. An immediately-invoked literal stays legal.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration allocation in //magellan:hotpath scopes: " +
		"append without preallocation, fmt.Sprint*, and escaping " +
		"closures inside loops",
	Run: run,
}

// directive is the opt-in marker.
const directive = "//magellan:hotpath"

// fmtAllocFuncs are fmt functions that allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": false, // Appendf writes into a caller buffer: legal
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		fileTagged := fileHasDirective(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fileTagged && !docHasDirective(fd.Doc) {
				continue
			}
			checkFunc(pass, info, fd)
		}
	}
	return nil
}

// fileHasDirective looks for the directive above the package clause;
// comments further down tag at most their own function.
func fileHasDirective(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if isDirective(c.Text) {
				return true
			}
		}
	}
	return false
}

func docHasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isDirective(c.Text) {
			return true
		}
	}
	return false
}

func isDirective(text string) bool {
	rest, ok := strings.CutPrefix(text, directive)
	if !ok {
		return false
	}
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// checkFunc walks fd's body looking for loops, then scans each loop
// body (including nested loops, attributed to the innermost) for the
// three allocation patterns.
func checkFunc(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	// declaredInLoop tracks slice objects declared inside a loop body;
	// they are excluded from rule 1 (a fresh slice per iteration is a
	// different smell, and sizing it needs no hoisting). declSites maps
	// every object declared in this function to its initializer (or
	// noInitializer for a bare var).
	var inspect func(n ast.Node, inLoop bool)
	declaredInLoop := map[types.Object]bool{}
	declSites := collectDeclSites(info, fd.Body)

	markDecls := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				if m.Tok == token.DEFINE {
					for _, lhs := range m.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								declaredInLoop[obj] = true
							}
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := m.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								if obj := info.Defs[id]; obj != nil {
									declaredInLoop[obj] = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	inspect = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if !inLoop {
					markDecls(m.Body)
					inspect(m.Body, true)
					return false
				}
			case *ast.RangeStmt:
				if !inLoop {
					markDecls(m.Body)
					inspect(m.Body, true)
					return false
				}
			case *ast.FuncLit:
				if !inLoop {
					return true
				}
				if escapes(m, n) {
					pass.Reportf(m.Pos(), "closure allocated per loop iteration in a "+
						"hotpath scope; hoist it out of the loop or pass state explicitly")
				}
				return true
			case *ast.CallExpr:
				if !inLoop {
					return true
				}
				checkCall(pass, info, m, declaredInLoop, declSites)
			}
			return true
		})
	}
	inspect(fd.Body, false)
}

// checkCall flags fmt.Sprint* calls and growth appends inside a loop.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, declaredInLoop map[types.Object]bool, declSites map[types.Object]ast.Node) {
	if fn := analysis.Callee(info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s allocates on every loop iteration in a "+
				"hotpath scope; format outside the loop or use append/strconv primitives",
				fn.Name())
		}
		return
	}
	// append(x, ...) where x is an identifier declared outside the loop
	// without capacity. The ident must resolve to the builtin — a
	// user-defined append shadows it and is not a growth call.
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[target]
	if obj == nil || declaredInLoop[obj] {
		return
	}
	if declWithoutCap(info, obj, declSites) {
		pass.Reportf(call.Pos(), "append to %s grows an unpreallocated slice inside a "+
			"hotpath loop; declare it with make(…, 0, n) sized to the expected length",
			target.Name)
	}
}

// escapes reports whether lit outlives the expression it appears in:
// it is not the function operand of an immediate call.
func escapes(lit *ast.FuncLit, root ast.Node) bool {
	escaping := true
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if ast.Unparen(call.Fun) == lit {
				escaping = false
				return false
			}
		}
		return true
	})
	return escaping
}

// noInitializer marks a `var s []T` declaration with no init expression.
type noInitializer struct{ ast.Expr }

// collectDeclSites maps every object declared in body to its
// initializer expression (noInitializer for a bare var declaration).
// Parameters, fields, and declarations outside body are absent, which
// declWithoutCap treats as legal.
func collectDeclSites(info *types.Info, body *ast.BlockStmt) map[types.Object]ast.Node {
	sites := map[types.Object]ast.Node{}
	record := func(id *ast.Ident, init ast.Node) {
		if obj := info.Defs[id]; obj != nil {
			sites[obj] = init
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, ast.Unparen(n.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					record(id, noInitializer{})
				}
				return true
			}
			if len(n.Values) != len(n.Names) {
				return true
			}
			for i, id := range n.Names {
				record(id, ast.Unparen(n.Values[i]))
			}
		}
		return true
	})
	return sites
}

// declWithoutCap reports whether obj is a slice variable whose
// declaration visibly lacks a capacity: `var s []T` (no initializer),
// `s := []T{}` (empty literal), or `s := make([]T, 0)` (two-argument
// make with constant zero length). Parameters, fields, and
// declarations the analysis cannot see default to legal.
func declWithoutCap(info *types.Info, obj types.Object, declSites map[types.Object]ast.Node) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	switch d := declSites[obj].(type) {
	case noInitializer:
		return true
	case *ast.CompositeLit:
		return len(d.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(d.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		if len(d.Args) != 2 {
			return false
		}
		tv, ok := info.Types[d.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}
