// Package maporder flags map iteration whose visit order leaks into
// output: writing to an encoder/writer from inside a `for range m`
// body, or collecting map keys/values into a slice that is never
// sorted afterwards. Either one makes a snapshot CSV or trace file
// differ between two runs of the same seed — the exact failure mode
// Magellan's report pipeline must never have.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the map-order checker.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag `for range` over a map that writes to an encoder/writer in " +
		"the loop body, or that appends to a slice which is never sorted " +
		"afterwards in the same function",
	Run: run,
}

// emitMethods are writer/encoder method names that serialize data in
// call order. Writing one inside a map range bakes the iteration order
// into the output, even when the writer itself cannot fail.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "WriteAll": true, "Encode": true, "EncodeElement": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, info, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := info.Types[rs.X]; !ok || !isMap(tv.Type) {
			return true
		}
		checkRange(pass, info, body, rs)
		return true
	})
}

func checkRange(pass *analysis.Pass, info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	// Slices fed by append inside the loop, keyed by the slice variable,
	// remembering the first append position for the report.
	appended := make(map[types.Object]token.Pos)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, emitting := emittingCall(info, n); emitting {
				pass.Reportf(n.Pos(),
					"%s inside iteration over a map writes in nondeterministic order; "+
						"collect and sort the keys first", name)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppend(info, call) || len(call.Args) == 0 {
					continue
				}
				target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[target]
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue // loop-local accumulation; order can't escape
				}
				if _, seen := appended[obj]; !seen {
					appended[obj] = n.Pos()
				}
			}
		}
		return true
	})

	for obj, pos := range appended {
		if !sortedAfter(info, fnBody, rs.End(), obj) {
			pass.Reportf(pos,
				"%s accumulates map keys/values in iteration order but is never "+
					"sorted afterwards; sort it before the order can leak into output",
				obj.Name())
		}
	}
}

// emittingCall reports whether call serializes data: a writer/encoder
// method, fmt.Fprint*/fmt.Print*, or io.WriteString.
func emittingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if emitMethods[fn.Name()] {
			return "method " + fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	switch path := fn.Pkg().Path(); {
	case path == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")):
		return "fmt." + fn.Name(), true
	case path == "io" && fn.Name() == "WriteString":
		return "io.WriteString", true
	}
	return "", false
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	builtin, ok := info.Uses[ident].(*types.Builtin)
	return ok && builtin.Name() == "append"
}

// sortedAfter reports whether, past pos in the enclosing function body,
// obj is passed to anything in package sort or slices.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || sorted {
			return !sorted
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(info, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func mentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
