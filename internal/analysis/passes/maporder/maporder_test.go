package maporder_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "../../testdata", maporder.Analyzer, "maporderfx")
}
