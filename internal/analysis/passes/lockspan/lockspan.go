// Package lockspan enforces, flow-sensitively, that no mutex is held
// across an operation that can block or touch the outside world:
// channel sends/receives/selects/ranges, network and file I/O,
// time.Sleep, WaitGroup.Wait, and the measurement plane's Submit/Seal
// boundaries (one slow peer behind a held ingest lock is a stalled
// pipeline). It supersedes the statement-list heuristics that used to
// live in locksafe: held-lock facts are propagated over the function's
// control-flow graph by the dataflow solver, so a Lock in one branch
// is still held after the join, through loop back-edges, and across
// any statement nesting.
//
// The analysis is a forward may-analysis: a lock counts as held at a
// program point if it is held on any path reaching it. Each distinct
// receiver expression (`mu`, `s.mu`, ...) is one fact bit; Lock/RLock
// generates the bit, Unlock/RUnlock kills it, and a deferred Unlock
// keeps the lock held to every exit — blocking under a deferred unlock
// is still a finding. Function literals are analyzed as functions in
// their own right.
package lockspan

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/cfg"
	"github.com/magellan-p2p/magellan/internal/analysis/dataflow"
)

// Analyzer is the flow-sensitive lock-span checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockspan",
	Doc: "flag mutexes provably held across blocking channel operations, " +
		"network/file I/O, or Submit/Seal boundaries (CFG dataflow)",
	Run: run,
}

// blockingMethods are method names that block on the network regardless
// of receiver package (they appear on *net.UDPConn, net.PacketConn,
// net.Listener, and wrappers thereof).
var blockingMethods = map[string]bool{
	"ReadFromUDP": true, "ReadMsgUDP": true, "WriteToUDP": true, "WriteMsgUDP": true,
	"ReadFrom": true, "WriteTo": true, "Accept": true, "AcceptTCP": true, "AcceptUDP": true,
}

// osFileMethods are *os.File methods that reach the kernel.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Sync": true, "Truncate": true, "ReadDir": true, "Readdir": true,
}

// osPkgFuncs are package os functions that reach the filesystem.
var osPkgFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "ReadDir": true, "Truncate": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	term := analysis.CallTerminator(info, pass.Facts)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, info, n.Body, term)
				}
			case *ast.FuncLit:
				checkBody(pass, info, n.Body, term)
			}
			return true
		})
	}
	return nil
}

// checkBody runs the held-locks dataflow over one function body.
func checkBody(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt, term func(*ast.CallExpr) cfg.TermKind) {
	g := cfg.New(body, cfg.Options{CallTerm: term})

	// Intern lock receivers in first-appearance order (deterministic:
	// blocks and nodes are in source order).
	bitOf := map[string]int{}
	var names []string
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue
			}
			cfg.Visit(node, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if recv, _, ok := lockCall(info, call); ok {
						if _, seen := bitOf[recv]; !seen && len(names) < 64 {
							bitOf[recv] = len(names)
							names = append(names, recv)
						}
					}
				}
				return true
			})
		}
	}
	if len(names) == 0 {
		return
	}

	transfer := func(b *cfg.Block, in dataflow.Bits) dataflow.Bits {
		held := in
		for _, node := range b.Nodes {
			held = applyNode(info, node, bitOf, held, nil)
		}
		return held
	}
	in := dataflow.Forward(g, dataflow.Problem{Transfer: transfer})

	for _, blk := range g.Blocks {
		held := in[blk.Index]
		for _, node := range blk.Nodes {
			held = applyNode(info, node, bitOf, held, func(pos token.Pos, what string, bits dataflow.Bits) {
				report(pass, pos, what, bits, names)
			})
		}
	}
}

// applyNode threads the held-lock set through one block node, invoking
// onBlock for every blocking operation encountered while a lock is
// held. Deferred statements neither block now nor release anything: a
// deferred Unlock runs at function exit, which is exactly why the lock
// stays held through the rest of the body.
func applyNode(info *types.Info, node ast.Node, bitOf map[string]int, held dataflow.Bits, onBlock func(token.Pos, string, dataflow.Bits)) dataflow.Bits {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return held
	}
	cfg.Visit(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if recv, op, ok := lockCall(info, m); ok {
				if bit, seen := bitOf[recv]; seen {
					switch op {
					case "Lock", "RLock":
						held |= 1 << bit
					case "Unlock", "RUnlock":
						held &^= 1 << bit
					}
				}
				return true
			}
			if held != 0 && onBlock != nil {
				if what, blocking := blockingCall(info, m); blocking {
					onBlock(m.Pos(), what, held)
				}
			}
		case *ast.SendStmt:
			if held != 0 && onBlock != nil {
				onBlock(m.Arrow, "a channel send", held)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && held != 0 && onBlock != nil {
				onBlock(m.OpPos, "a channel receive", held)
			}
		case *ast.SelectStmt:
			if held != 0 && onBlock != nil && !hasDefault(m) {
				onBlock(m.Select, "a blocking select", held)
			}
		case *ast.RangeStmt:
			if held != 0 && onBlock != nil {
				if tv, ok := info.Types[m.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						onBlock(m.X.Pos(), "a channel range", held)
					}
				}
			}
		}
		return true
	})
	return held
}

func report(pass *analysis.Pass, pos token.Pos, what string, bits dataflow.Bits, names []string) {
	var held []string
	for i, name := range names {
		if bits&(1<<i) != 0 {
			held = append(held, name)
		}
	}
	slices.Sort(held)
	pass.Reportf(pos, "%s is held across %s; shrink the critical section",
		strings.Join(held, ", "), what)
}

// lockCall matches expr against recv.{Lock,RLock,Unlock,RUnlock}() where
// the method comes from package sync (directly or via embedding).
func lockCall(info *types.Info, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// blockingCall recognizes calls that can block indefinitely or reach
// the outside world.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return "", false
	}
	if analysis.IsPkgFunc(fn, "time", "Sleep") {
		return "time.Sleep", true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && osPkgFuncs[fn.Name()] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return "file I/O (os." + fn.Name() + ")", true
		}
	}
	recv := analysis.ReceiverNamed(fn)
	if recv == nil {
		return "", false
	}
	if analysis.NamedFrom(recv, "sync", "WaitGroup") && fn.Name() == "Wait" {
		return "WaitGroup.Wait", true
	}
	if blockingMethods[fn.Name()] {
		return "network I/O (" + fn.Name() + ")", true
	}
	pkg := recv.Obj().Pkg()
	if pkg != nil && pkg.Path() == "net" && (fn.Name() == "Read" || fn.Name() == "Write") {
		return "network I/O (" + fn.Name() + ")", true
	}
	if analysis.NamedFrom(recv, "os", "File") && osFileMethods[fn.Name()] {
		return "file I/O (File." + fn.Name() + ")", true
	}
	// The measurement plane's ingest/seal boundaries: Submit and Seal
	// on internal/trace types do I/O, take their own locks, and fan
	// out to sinks — never call them with a lock held.
	if pkg != nil && analysis.InInternalSegment(pkg.Path(), []string{"trace"}) &&
		(fn.Name() == "Submit" || fn.Name() == "Seal") {
		return recv.Obj().Name() + "." + fn.Name(), true
	}
	return "", false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
