package lockspan_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/lockspan"
)

func TestLockSpan(t *testing.T) {
	analysistest.Run(t, "../../testdata", lockspan.Analyzer,
		"example.com/internal/trace/spanfx", "lockspanfx")
}
