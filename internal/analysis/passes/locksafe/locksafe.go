// Package locksafe enforces two locking invariants on the trace-server
// path (and everywhere else):
//
//  1. values whose type contains a sync primitive are never copied —
//     not as parameters, receivers, call arguments, range values, or
//     plain assignments;
//  2. a mutex is never held across a blocking operation — channel
//     sends/receives, selects, network I/O, time.Sleep, or
//     WaitGroup.Wait — the pattern that turns one slow UDP peer into a
//     stalled ingest pipeline.
//
// The blocking check is flow-insensitive within a statement list: it
// tracks Lock/Unlock pairs per receiver expression and treats a
// deferred Unlock as holding the lock to the end of the function.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flag copies of lock-bearing values and mutexes held across " +
		"blocking channel/network operations",
	Run: run,
}

// syncLocks are the sync types that must never be copied once used.
var syncLocks = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

// blockingMethods are method names that block on the network regardless
// of receiver package (they appear on *net.UDPConn, net.PacketConn,
// net.Listener, and wrappers thereof).
var blockingMethods = map[string]bool{
	"ReadFromUDP": true, "ReadMsgUDP": true, "WriteToUDP": true, "WriteMsgUDP": true,
	"ReadFrom": true, "WriteTo": true, "Accept": true, "AcceptTCP": true, "AcceptUDP": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		checkCopies(pass, info, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkBlock(pass, info, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// --- invariant 1: no copies of lock-bearing values ---

func checkCopies(pass *analysis.Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				checkFieldList(pass, info, n.Recv, "receiver")
			}
			if n.Type.Params != nil {
				checkFieldList(pass, info, n.Type.Params, "parameter")
			}
		case *ast.FuncLit:
			if n.Type.Params != nil {
				checkFieldList(pass, info, n.Type.Params, "parameter")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				tv, ok := info.Types[rhs]
				if !ok {
					continue
				}
				if name, bad := lockBearing(tv.Type); bad {
					pass.Reportf(n.Lhs[min(i, len(n.Lhs)-1)].Pos(),
						"assignment copies %s, which contains %s; use a pointer",
						tv.Type, name)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := exprType(info, n.Value)
			if t == nil {
				return true
			}
			if name, bad := lockBearing(t); bad {
				pass.Reportf(n.Value.Pos(),
					"range value copies %s, which contains %s; iterate by index",
					t, name)
			}
		case *ast.CallExpr:
			if analysis.Callee(info, n) == nil {
				return true // conversions and builtins don't copy semantically
			}
			for _, arg := range n.Args {
				tv, ok := info.Types[arg]
				if !ok {
					continue
				}
				if name, bad := lockBearing(tv.Type); bad {
					pass.Reportf(arg.Pos(),
						"call passes %s by value, which contains %s; pass a pointer",
						tv.Type, name)
				}
			}
		}
		return true
	})
}

// exprType resolves an expression's type, falling back to Defs for
// idents introduced by := (range variables are definitions, not uses,
// and do not appear in the Types map).
func exprType(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok {
		return tv.Type
	}
	if ident, ok := expr.(*ast.Ident); ok {
		if obj := info.Defs[ident]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[ident]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesValue reports whether evaluating expr copies an existing value
// (as opposed to constructing a fresh one, which is legal).
func copiesValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

func checkFieldList(pass *analysis.Pass, info *types.Info, fields *ast.FieldList, kind string) {
	for _, field := range fields.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if name, bad := lockBearing(tv.Type); bad {
			pass.Reportf(field.Type.Pos(),
				"%s copies %s, which contains %s; use a pointer",
				kind, tv.Type, name)
		}
	}
}

// lockBearing reports whether t contains a sync primitive by value, and
// which one. Pointers, slices, maps, channels, and interfaces break the
// containment: pointing at a lock is fine.
func lockBearing(t types.Type) (string, bool) {
	return lockBearingRec(t, make(map[types.Type]bool))
}

func lockBearingRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncLocks[u.Obj().Name()] {
			return "sync." + u.Obj().Name(), true
		}
		return lockBearingRec(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, bad := lockBearingRec(u.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return lockBearingRec(u.Elem(), seen)
	}
	return "", false
}

// --- invariant 2: no blocking operations while a lock is held ---

// walkBlock scans a statement list in order, tracking which receiver
// expressions currently hold a lock. Nested blocks get a copy of the
// state: a lock taken inside an if-arm does not leak out of it.
func walkBlock(pass *analysis.Pass, info *types.Info, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := lockCall(info, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
					continue
				case "Unlock", "RUnlock":
					delete(held, recv)
					continue
				}
			}
		case *ast.DeferStmt:
			if _, op, ok := lockCall(info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				continue // lock intentionally held to function end; keep tracking
			}
		case *ast.BlockStmt:
			walkBlock(pass, info, s.List, clone(held))
			continue
		case *ast.IfStmt:
			scanIfHeld(pass, info, s.Init, held)
			scanIfHeld(pass, info, s.Cond, held)
			walkBlock(pass, info, s.Body.List, clone(held))
			if s.Else != nil {
				walkBlock(pass, info, []ast.Stmt{s.Else}, clone(held))
			}
			continue
		case *ast.ForStmt:
			scanIfHeld(pass, info, s.Init, held)
			scanIfHeld(pass, info, s.Cond, held)
			scanIfHeld(pass, info, s.Post, held)
			walkBlock(pass, info, s.Body.List, clone(held))
			continue
		case *ast.RangeStmt:
			scanIfHeld(pass, info, s.X, held)
			if len(held) > 0 {
				if tv, ok := info.Types[s.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						reportHeld(pass, s.X.Pos(), held, "a channel range")
					}
				}
			}
			walkBlock(pass, info, s.Body.List, clone(held))
			continue
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			scanIfHeld(pass, info, s, held)
			continue
		}
		scanIfHeld(pass, info, stmt, held)
	}
}

// scanIfHeld looks for blocking operations inside node while any lock
// is held. Function literals are skipped: their bodies run elsewhere.
func scanIfHeld(pass *analysis.Pass, info *types.Info, node ast.Node, held map[string]bool) {
	if node == nil || len(held) == 0 {
		return
	}
	switch node.(type) {
	case ast.Expr, ast.Stmt:
	default:
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reportHeld(pass, n.Arrow, held, "a channel send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				reportHeld(pass, n.OpPos, held, "a channel receive")
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				reportHeld(pass, n.Select, held, "a blocking select")
			}
		case *ast.CallExpr:
			if name, blocking := blockingCall(info, n); blocking {
				reportHeld(pass, n.Pos(), held, name)
			}
		}
		return true
	})
}

func reportHeld(pass *analysis.Pass, pos token.Pos, held map[string]bool, what string) {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	slices.Sort(names)
	pass.Reportf(pos, "%s is held across %s; shrink the critical section",
		strings.Join(names, ", "), what)
}

// lockCall matches expr against recv.{Lock,RLock,Unlock,RUnlock}() where
// the method comes from package sync (directly or via embedding).
func lockCall(info *types.Info, expr ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// blockingCall recognizes calls that can block indefinitely.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil {
		return "", false
	}
	if analysis.IsPkgFunc(fn, "time", "Sleep") {
		return "time.Sleep", true
	}
	recv := analysis.ReceiverNamed(fn)
	if recv == nil {
		return "", false
	}
	if analysis.NamedFrom(recv, "sync", "WaitGroup") && fn.Name() == "Wait" {
		return "WaitGroup.Wait", true
	}
	if blockingMethods[fn.Name()] {
		return "network I/O (" + fn.Name() + ")", true
	}
	if pkg := recv.Obj().Pkg(); pkg != nil && pkg.Path() == "net" &&
		(fn.Name() == "Read" || fn.Name() == "Write") {
		return "network I/O (" + fn.Name() + ")", true
	}
	return "", false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
