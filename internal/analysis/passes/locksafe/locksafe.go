// Package locksafe enforces the no-copy locking invariant on the
// trace-server path (and everywhere else): values whose type contains
// a sync primitive are never copied — not as parameters, receivers,
// call arguments, range values, or plain assignments.
//
// The companion invariant — a mutex is never held across a blocking
// operation — used to live here as a same-statement-list heuristic; it
// is now enforced flow-sensitively by the lockspan analyzer, which
// propagates held-lock facts over the control-flow graph.
package locksafe

import (
	"go/ast"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the lock-copy checker.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flag copies of lock-bearing values (parameters, receivers, " +
		"assignments, range values, call arguments)",
	Run: run,
}

// syncLocks are the sync types that must never be copied once used.
var syncLocks = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		checkCopies(pass, info, file)
	}
	return nil
}

// --- invariant 1: no copies of lock-bearing values ---

func checkCopies(pass *analysis.Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				checkFieldList(pass, info, n.Recv, "receiver")
			}
			if n.Type.Params != nil {
				checkFieldList(pass, info, n.Type.Params, "parameter")
			}
		case *ast.FuncLit:
			if n.Type.Params != nil {
				checkFieldList(pass, info, n.Type.Params, "parameter")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				tv, ok := info.Types[rhs]
				if !ok {
					continue
				}
				if name, bad := lockBearing(tv.Type); bad {
					pass.Reportf(n.Lhs[min(i, len(n.Lhs)-1)].Pos(),
						"assignment copies %s, which contains %s; use a pointer",
						tv.Type, name)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := exprType(info, n.Value)
			if t == nil {
				return true
			}
			if name, bad := lockBearing(t); bad {
				pass.Reportf(n.Value.Pos(),
					"range value copies %s, which contains %s; iterate by index",
					t, name)
			}
		case *ast.CallExpr:
			if analysis.Callee(info, n) == nil {
				return true // conversions and builtins don't copy semantically
			}
			for _, arg := range n.Args {
				tv, ok := info.Types[arg]
				if !ok {
					continue
				}
				if name, bad := lockBearing(tv.Type); bad {
					pass.Reportf(arg.Pos(),
						"call passes %s by value, which contains %s; pass a pointer",
						tv.Type, name)
				}
			}
		}
		return true
	})
}

// exprType resolves an expression's type, falling back to Defs for
// idents introduced by := (range variables are definitions, not uses,
// and do not appear in the Types map).
func exprType(info *types.Info, expr ast.Expr) types.Type {
	if tv, ok := info.Types[expr]; ok {
		return tv.Type
	}
	if ident, ok := expr.(*ast.Ident); ok {
		if obj := info.Defs[ident]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[ident]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesValue reports whether evaluating expr copies an existing value
// (as opposed to constructing a fresh one, which is legal).
func copiesValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

func checkFieldList(pass *analysis.Pass, info *types.Info, fields *ast.FieldList, kind string) {
	for _, field := range fields.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if name, bad := lockBearing(tv.Type); bad {
			pass.Reportf(field.Type.Pos(),
				"%s copies %s, which contains %s; use a pointer",
				kind, tv.Type, name)
		}
	}
}

// lockBearing reports whether t contains a sync primitive by value, and
// which one. Pointers, slices, maps, channels, and interfaces break the
// containment: pointing at a lock is fine.
func lockBearing(t types.Type) (string, bool) {
	return lockBearingRec(t, make(map[types.Type]bool))
}

func lockBearingRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncLocks[u.Obj().Name()] {
			return "sync." + u.Obj().Name(), true
		}
		return lockBearingRec(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, bad := lockBearingRec(u.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return lockBearingRec(u.Elem(), seen)
	}
	return "", false
}
