package locksafe_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, "../../testdata", locksafe.Analyzer, "locksafefx")
}
