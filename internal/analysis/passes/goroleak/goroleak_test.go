package goroleak_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "../../testdata", goroleak.Analyzer,
		"goroleakdepfx", "goroleakfx")
}
