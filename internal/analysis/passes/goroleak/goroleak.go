// Package goroleak flags goroutines with no reachable stop path: a
// `go` statement whose body's control-flow graph can never reach its
// exit. Such a goroutine cannot be joined, drained, or shut down — it
// holds its stack, its captured references, and whatever it loops over
// until the process dies. One is an accepted daemon; dozens per ingest
// shard are a leak. The sharded ingest fleet and parallel tick
// execution on the roadmap will multiply goroutine launch sites, so
// the invariant is: every goroutine observes some stop signal.
//
// The check is CFG-based, not syntactic: `for { select { case <-stop:
// return ... } }` has a path to the exit and is clean; `for { work() }`
// and `select {}` do not and are flagged; `for msg := range ch` is
// clean because a closed channel ends the range. Functions that can
// never return publish the facts.NoExit fact, so `go pkg.Forever()`
// is flagged across package boundaries, and a call to such a function
// severs fall-through inside any caller's CFG (a function whose last
// act is calling a non-returning function is itself non-returning).
package goroleak

import (
	"go/ast"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/cfg"
	"github.com/magellan-p2p/magellan/internal/analysis/facts"
)

// Analyzer is the goroutine-leak checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flag goroutines whose body can never reach its exit — no " +
		"return, no closing channel, no observed stop signal on any " +
		"control-flow path",
	Facts: computeFacts,
	Run:   run,
}

// computeFacts publishes facts.NoExit for every function whose CFG
// cannot reach its exit. Iterated to a package-local fixpoint so a
// wrapper that only calls a local non-returning function is itself
// marked.
func computeFacts(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for changed := true; changed; {
		changed = false
		term := analysis.CallTerminator(info, pass.Facts)
		for _, file := range pass.Files() {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g := cfg.New(fd.Body, cfg.Options{CallTerm: term})
				if !g.CanReachExit() {
					if pass.Facts.Add(facts.KeyOf(fn), facts.NoExit) {
						changed = true
					}
				}
			}
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	term := analysis.CallTerminator(info, pass.Facts)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				g := cfg.New(fun.Body, cfg.Options{CallTerm: term})
				if !g.CanReachExit() {
					pass.Reportf(gs.Go, "goroutine body has no reachable stop path: "+
						"no control-flow path returns or observes a stop signal; "+
						"give it a context, stop channel, or bounded input")
				}
			default:
				fn := analysis.Callee(info, gs.Call)
				if fn == nil {
					return true
				}
				if pass.Facts.Get(facts.KeyOf(fn))&facts.NoExit != 0 {
					pass.Reportf(gs.Go, "goroutine runs %s, which can never return: "+
						"no control-flow path reaches its exit; give it a stop signal",
						calleeLabel(fn))
				}
			}
			return true
		})
	}
	return nil
}

func calleeLabel(fn *types.Func) string {
	if recv := analysis.ReceiverNamed(fn); recv != nil {
		return fn.Pkg().Name() + "." + recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
