// Package floatcmp flags == and != between floating-point expressions
// in the metric packages (internal/graph, internal/metrics), where
// clustering-coefficient and reciprocity math lives. Two runs of the
// same seed stay bit-identical only until someone reassociates a sum;
// equality tests on computed floats are how that fragility becomes a
// wrong branch instead of a tiny residual.
//
// Comparisons against a constant (x == 0, x != 1) are deliberately
// exempt: exact sentinel checks against literals are well-defined and
// pervasive in guard clauses.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the float-equality checker.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= between non-constant floating-point expressions in " +
		"internal/{graph,metrics}; use an epsilon tolerance instead",
	Run: run,
}

// Restricted names the internal/<segment> packages the invariant covers.
var Restricted = []string{"graph", "metrics"}

func run(pass *analysis.Pass) error {
	if !analysis.InInternalSegment(pass.Path(), Restricted) {
		return nil
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			lhs, lok := info.Types[bin.X]
			rhs, rok := info.Types[bin.Y]
			if !lok || !rok || (!isFloat(lhs.Type) && !isFloat(rhs.Type)) {
				return true
			}
			if lhs.Value != nil || rhs.Value != nil {
				return true // sentinel comparison against a constant
			}
			pass.Reportf(bin.OpPos, "%s between floating-point expressions is "+
				"seed-fragile; compare within an epsilon tolerance", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
