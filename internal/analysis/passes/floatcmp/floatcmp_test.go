package floatcmp_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "../../testdata", floatcmp.Analyzer,
		"example.com/internal/metrics/floatfx", // restricted: flags expected
		"example.com/internal/report/floatfx",  // unrestricted: must stay silent
	)
}
