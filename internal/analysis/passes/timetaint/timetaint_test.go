package timetaint_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/timetaint"
)

func TestTimeTaint(t *testing.T) {
	analysistest.Run(t, "../../testdata", timetaint.Analyzer,
		"example.com/internal/obsfx",
		"example.com/internal/sim/taintfx",
		"example.com/internal/viz/taintfx")
}
