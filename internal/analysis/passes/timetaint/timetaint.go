// Package timetaint is the flow-aware successor to the determinism
// pass's syntactic ban-list. determinism flags a *direct* call to
// time.Now or global math/rand inside the simulator core; timetaint
// closes the laundering hole: a helper in an unrestricted package that
// reads the wall clock taints every function that calls it, and a call
// from a restricted package into any tainted out-of-core function is a
// finding.
//
// Taint is computed as a cross-package fact (facts.WallClock,
// facts.GlobalRand, facts.Env) during the fact phase, which the
// framework runs in import order: by the time internal/sim is
// analyzed, internal/obs's fact set is already in the store. Within a
// package, taint iterates to a fixpoint, so mutually recursive helpers
// converge. Propagation follows static calls only — an ambient read
// behind an injected func value or interface is the sanctioned
// pattern, precisely because injection makes the dependency visible at
// the construction site, where determinism polices it.
package timetaint

import (
	"go/ast"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis"
	"github.com/magellan-p2p/magellan/internal/analysis/facts"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/determinism"
)

// Analyzer is the transitive-ambient-state checker.
var Analyzer = &analysis.Analyzer{
	Name: "timetaint",
	Doc: "flag calls from the simulator core into functions that " +
		"transitively read the wall clock, the global math/rand state, or " +
		"the process environment (cross-package taint propagation)",
	Facts: computeFacts,
	Run:   run,
}

// computeFacts publishes the ambient-taint fact set of every function
// defined in this package: the union of seed taints (direct stdlib
// ambient reads) and the taints of statically-called functions whose
// facts are already known.
func computeFacts(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files() {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := facts.KeyOf(fn)
				var bits facts.Bits
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := analysis.Callee(info, call)
					if callee == nil {
						return true
					}
					bits |= facts.Seed(callee)
					bits |= pass.Facts.Get(facts.KeyOf(callee)) & facts.Ambient
					return true
				})
				if pass.Facts.Add(key, bits) {
					changed = true
				}
			}
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	if !analysis.InInternalSegment(pass.Path(), determinism.Restricted) {
		return nil
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if facts.Seed(callee) != 0 {
				return true // a direct ambient read is determinism's finding
			}
			// Callees inside the restricted core are analyzed (and
			// their own ambient reads flagged) where they are defined;
			// flagging every caller too would only repeat the root
			// cause up the call chain.
			if analysis.InInternalSegment(callee.Pkg().Path(), determinism.Restricted) {
				return true
			}
			taint := pass.Facts.Get(facts.KeyOf(callee)) & facts.Ambient
			if taint == 0 {
				return true
			}
			pass.Reportf(call.Pos(), "call to %s transitively reads ambient state (%s) "+
				"inside the simulator core; inject the dependency instead",
				calleeLabel(callee), taint)
			return true
		})
	}
	return nil
}

// calleeLabel renders pkg.Func or pkg.(Recv).Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	if recv := analysis.ReceiverNamed(fn); recv != nil {
		return fn.Pkg().Name() + "." + recv.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
