// Package determinism forbids ambient nondeterminism — global
// math/rand, wall-clock time, process environment — inside the
// simulator core. Magellan's claim is that every topology snapshot and
// every figure is bit-for-bit derivable from a seed; that only holds if
// randomness flows through an injected *rand.Rand and time through the
// simulated DES clock.
package determinism

import (
	"go/ast"
	"go/types"

	"github.com/magellan-p2p/magellan/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand package-level functions, time.Now/Since/Until " +
		"and friends, os environment reads, and obs wall-clock constructors " +
		"(StartTimer, NewStageProfile, NewLogger, NewWallJournal) inside the " +
		"simulator core " +
		"(internal/{sim,des,sched,protocol,stream,workload,graph,isp,netsim,core,gnutella,faults,live,tsdb,alert})",
	Run: run,
}

// Restricted names the internal/<segment> packages the invariant covers.
// Everything else (cmd, report, trace, viz) may read the wall clock.
var Restricted = []string{
	"sim", "des", "sched", "protocol", "stream", "workload",
	"graph", "isp", "netsim", "core", "gnutella", "faults", "live",
	"tsdb", "alert",
}

// forbidden maps package path → function name → the fix to suggest.
// Constructors (rand.New, rand.NewSource, …) stay legal: they are how
// the injected generator is built in the first place.
var forbidden = map[string]map[string]string{
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Seed": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "", "UintN": "", "Uint": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
	"time": {
		"Now": "", "Since": "", "Until": "", "After": "", "Tick": "",
		"NewTimer": "", "NewTicker": "", "Sleep": "", "AfterFunc": "",
	},
	"os": {
		"Getenv": "", "LookupEnv": "", "Environ": "",
	},
	// The telemetry plane is measurement-only: restricted packages may
	// *use* an injected obs handle (Tracer, *Registry, *Logger,
	// *Journal — the no-op defaults are deterministic-safe), but
	// constructing a wall-clock-reading one pulls a clock dependency
	// into the core. NewJournal (tick-stamped) stays legal; only the
	// wall-stamping constructor is banned.
	"github.com/magellan-p2p/magellan/internal/obs": {
		"StartTimer": "", "NewStageProfile": "", "NewLogger": "", "NewWallJournal": "",
	},
}

// remedy describes, per package, how the code should get the value
// instead.
var remedy = map[string]string{
	"math/rand":    "thread the run's seeded *rand.Rand through instead",
	"math/rand/v2": "thread the run's seeded *rand.Rand through instead",
	"time":         "use the simulated clock (des.Simulator time) instead",
	"os":           "pass configuration explicitly through the config struct",
	"github.com/magellan-p2p/magellan/internal/obs": "accept the handle (Tracer, *Registry, *Logger, *Journal) injected from the daemon/CLI layer; the no-op default is deterministic-safe",
}

func run(pass *analysis.Pass) error {
	if !analysis.InInternalSegment(pass.Path(), Restricted) {
		return nil
	}
	info := pass.Pkg.TypesInfo
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := info.Uses[ident].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the fix, not the bug
			}
			path := fn.Pkg().Path()
			names, ok := forbidden[path]
			if !ok {
				return true
			}
			if _, bad := names[fn.Name()]; !bad {
				return true
			}
			pass.Reportf(ident.Pos(), "%s.%s is nondeterministic inside the simulator core; %s",
				path, fn.Name(), remedy[path])
			return true
		})
	}
	return nil
}
