package determinism_test

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/analysistest"
	"github.com/magellan-p2p/magellan/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../../testdata", determinism.Analyzer,
		"example.com/internal/sim/detfx",   // restricted: flags expected
		"example.com/internal/sched/detfx", // restricted: the event scheduler itself
		"example.com/internal/viz/detfx",   // unrestricted: must stay silent
	)
}
