package load

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// TestPackagesTypechecks loads a real repo package and verifies full
// type information is available, including types imported via export
// data (stdlib and intra-module).
func TestPackagesTypechecks(t *testing.T) {
	pkgs, err := Packages(moduleRoot(t), "./internal/trace")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Types.Name() != "trace" {
		t.Fatalf("bad types package: %v", pkg.Types)
	}
	// The Store.mu field must resolve to sync.RWMutex through export data.
	obj := pkg.Types.Scope().Lookup("Store")
	if obj == nil {
		t.Fatal("Store not found in package scope")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Store is %T, want struct", obj.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "mu" && f.Type().String() == "sync.RWMutex" {
			found = true
		}
	}
	if !found {
		t.Fatal("Store.mu did not resolve to sync.RWMutex")
	}
}

// TestDirLoadsFixtureStyle type-checks an ad-hoc directory under a
// chosen import path, the mode analysistest uses for testdata fixtures.
func TestDirLoadsFixtureStyle(t *testing.T) {
	dir := t.TempDir()
	src := `package fx

import (
	"math/rand"
	"time"
)

func Jitter(r *rand.Rand) time.Duration {
	return time.Duration(r.Intn(1000)) * time.Millisecond
}
`
	if err := os.WriteFile(filepath.Join(dir, "fx.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := Dir(dir, "example.com/internal/sim/fx")
	if err != nil {
		t.Fatalf("Dir: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if pkg.ImportPath != "example.com/internal/sim/fx" {
		t.Fatalf("import path = %q", pkg.ImportPath)
	}
	// r.Intn must resolve to (*math/rand.Rand).Intn.
	var intn types.Object
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Intn" {
				intn = pkg.TypesInfo.Uses[sel.Sel]
			}
			return true
		})
	}
	if intn == nil || intn.Pkg().Path() != "math/rand" {
		t.Fatalf("Intn resolved to %v, want math/rand method", intn)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}
