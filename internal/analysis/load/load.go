// Package load parses and type-checks Go packages using only the
// standard library. It is the substrate for the magellan-vet analyzers:
// a miniature replacement for golang.org/x/tools/go/packages, which this
// repository deliberately does not depend on.
//
// Dependency type information comes from gc export data: `go list
// -export -deps -json` compiles (or reuses from the build cache) every
// dependency and reports the export file each produced; go/importer's
// lookup mode then reads those files. Only the packages under analysis
// are parsed from source.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
)

// A Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	// Imports lists the package's direct imports, used to order
	// cross-package fact propagation.
	Imports []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors holds any type-checking problems. Analyzers still run
	// on partially-checked packages; the driver reports these first.
	TypeErrors []error
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads the packages matching patterns (as understood by `go
// list`) rooted at dir, returning one Package per matched package.
//
// Packages are parsed and type-checked concurrently, one worker per
// CPU. Each worker owns a gc-export-data importer whose package cache
// survives across the packages that worker checks, so shared
// dependencies (the stdlib, internal leaf packages) are decoded from
// export data once per worker rather than once per package.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly {
			if lp.Error != nil {
				return nil, fmt.Errorf("load: dependency %s: %s", lp.ImportPath, lp.Error.Err)
			}
			continue
		}
		targets = append(targets, lp)
	}
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, which this loader does not support", lp.ImportPath)
		}
	}

	fset := token.NewFileSet() // safe for concurrent use
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	workers := min(runtime.GOMAXPROCS(0), len(targets))
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One importer (and thus one export-data cache) per worker.
			imp := newExportImporter(fset, exports)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					return
				}
				lp := targets[i]
				var files []string
				for _, f := range lp.GoFiles {
					files = append(files, filepath.Join(lp.Dir, f))
				}
				pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, files)
				if err != nil {
					errs[i] = err
					continue
				}
				pkg.Name = lp.Name
				pkg.Imports = lp.Imports
				pkgs[i] = pkg
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// Dir loads a single package from the .go files directly under dir,
// type-checked under the given import path. It exists for analysistest
// fixtures, which live in testdata (invisible to `go list`) but may
// import standard-library packages; those are resolved through the
// export data of the surrounding toolchain.
func Dir(dir, importPath string) (*Package, error) {
	pkgs, err := loadFixtures(map[string]string{importPath: dir}, []string{importPath})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// Dirs loads fixture packages rooted at srcRoot (each import path maps
// to srcRoot/<importpath>), type-checked together so fixtures may
// import one another: packages are checked in dependency order and an
// already-checked fixture satisfies the imports of later ones.
// Imports outside the fixture set resolve through toolchain export
// data, as in Packages.
func Dirs(srcRoot string, importPaths []string) ([]*Package, error) {
	dirs := make(map[string]string, len(importPaths))
	for _, path := range importPaths {
		dirs[path] = filepath.Join(srcRoot, filepath.FromSlash(path))
	}
	return loadFixtures(dirs, importPaths)
}

// loadFixtures is the shared fixture loader: dirs maps each import
// path to the directory holding its sources.
func loadFixtures(dirs map[string]string, importPaths []string) ([]*Package, error) {
	fset := token.NewFileSet()
	type fixture struct {
		importPath string
		dir        string
		files      []string
		syntax     []*ast.File
		imports    []string
		pkg        *Package
	}
	fixtures := make([]*fixture, 0, len(importPaths))
	inSet := make(map[string]*fixture)
	external := make(map[string]bool)
	for _, path := range importPaths {
		dir := dirs[path]
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("load: no .go files in %s", dir)
		}
		syntax, err := parseFiles(fset, files)
		if err != nil {
			return nil, err
		}
		fx := &fixture{importPath: path, dir: dir, files: files, syntax: syntax}
		seen := make(map[string]bool)
		for _, f := range syntax {
			for _, spec := range f.Imports {
				p := strings.Trim(spec.Path.Value, `"`)
				if p != "unsafe" && !seen[p] {
					seen[p] = true
					fx.imports = append(fx.imports, p)
				}
			}
		}
		fixtures = append(fixtures, fx)
		inSet[path] = fx
	}
	for _, fx := range fixtures {
		for _, p := range fx.imports {
			if inSet[p] == nil {
				external[p] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		paths := make([]string, 0, len(external))
		for p := range external {
			paths = append(paths, p)
		}
		slices.Sort(paths)
		listed, err := goList(fixtures[0].dir, paths...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	checked := make(map[string]*types.Package)
	imp := &fixtureImporter{
		local:    checked,
		fallback: newExportImporter(fset, exports),
	}
	// Check in dependency order within the set (imports are acyclic in
	// type-correct Go; a cycle would surface as a missing-import error).
	// Selection is deterministic: among ready fixtures, lexicographically
	// first import path wins.
	emitted := make(map[string]bool)
	var ordered []*fixture
	remaining := slices.Clone(fixtures)
	slices.SortFunc(remaining, func(a, b *fixture) int {
		return strings.Compare(a.importPath, b.importPath)
	})
	for len(remaining) > 0 {
		progress := false
		for i, fx := range remaining {
			ready := true
			for _, p := range fx.imports {
				if inSet[p] != nil && !emitted[p] {
					ready = false
					break
				}
			}
			if ready {
				ordered = append(ordered, fx)
				emitted[fx.importPath] = true
				remaining = slices.Delete(remaining, i, i+1)
				progress = true
				break
			}
		}
		if !progress {
			// Import cycle among fixtures: append the rest; the type
			// checker will report the unresolvable import.
			ordered = append(ordered, remaining...)
			break
		}
	}
	for _, fx := range ordered {
		pkg, err := checkParsed(fset, imp, fx.importPath, fx.dir, fx.files, fx.syntax)
		if err != nil {
			return nil, err
		}
		pkg.Imports = fx.imports
		fx.pkg = pkg
		if pkg.Types != nil {
			checked[fx.importPath] = pkg.Types
		}
	}
	out := make([]*Package, len(fixtures))
	for i, fx := range fixtures {
		out[i] = fx.pkg
	}
	return out, nil
}

// fixtureImporter resolves fixture-set packages from memory and
// everything else through export data.
type fixtureImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p := fi.local[path]; p != nil {
		return p, nil
	}
	return fi.fallback.Import(path)
}

// goList runs `go list -e -export -deps -json` over the patterns in dir
// and decodes the JSON stream. -deps pulls in transitive dependencies so
// every import resolves to an export file.
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	cmdArgs := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	var out []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// newExportImporter returns a types.Importer that resolves import paths
// through the export files recorded by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		syntax = append(syntax, f)
	}
	return syntax, nil
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	syntax, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, imp, importPath, dir, files, syntax)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    files,
		Fset:       fset,
		Syntax:     syntax,
		TypesInfo:  info,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		return nil, fmt.Errorf("load: %s: %w", importPath, err)
	}
	return pkg, nil
}
