// Package load parses and type-checks Go packages using only the
// standard library. It is the substrate for the magellan-vet analyzers:
// a miniature replacement for golang.org/x/tools/go/packages, which this
// repository deliberately does not depend on.
//
// Dependency type information comes from gc export data: `go list
// -export -deps -json` compiles (or reuses from the build cache) every
// dependency and reports the export file each produced; go/importer's
// lookup mode then reads those files. Only the packages under analysis
// are parsed from source.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors holds any type-checking problems. Analyzers still run
	// on partially-checked packages; the driver reports these first.
	TypeErrors []error
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads the packages matching patterns (as understood by `go
// list`) rooted at dir, returning one Package per matched package.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, which this loader does not support", lp.ImportPath)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Name = lp.Name
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Dir loads a single package from the .go files directly under dir,
// type-checked under the given import path. It exists for analysistest
// fixtures, which live in testdata (invisible to `go list`) but may
// import standard-library packages; those are resolved through the
// export data of the surrounding toolchain.
func Dir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	// Parse first so we know which imports need export data.
	syntax, firstErr := parseFiles(fset, files)
	if firstErr != nil {
		return nil, firstErr
	}
	var imports []string
	seen := make(map[string]bool)
	for _, f := range syntax {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(dir, imports...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	pkg, err := checkParsed(fset, imp, importPath, dir, files, syntax)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// goList runs `go list -e -export -deps -json` over the patterns in dir
// and decodes the JSON stream. -deps pulls in transitive dependencies so
// every import resolves to an export file.
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	cmdArgs := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	var out []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// newExportImporter returns a types.Importer that resolves import paths
// through the export files recorded by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		syntax = append(syntax, f)
	}
	return syntax, nil
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	syntax, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, imp, importPath, dir, files, syntax)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, syntax []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    files,
		Fset:       fset,
		Syntax:     syntax,
		TypesInfo:  info,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		return nil, fmt.Errorf("load: %s: %w", importPath, err)
	}
	return pkg, nil
}
