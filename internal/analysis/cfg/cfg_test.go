package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"github.com/magellan-p2p/magellan/internal/analysis/cfg"
)

// buildFirst parses src as a file and builds the CFG of its first
// function body.
func buildFirst(t *testing.T, src string, opts cfg.Options) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			return cfg.New(fd.Body, opts)
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestCanReachExit(t *testing.T) {
	hangTerm := func(call *ast.CallExpr) cfg.TermKind {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "hang" {
			return cfg.TermHangs
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "exit" {
			return cfg.TermExits
		}
		return cfg.TermNone
	}
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight line", `package p; func f() { x := 1; _ = x }`, true},
		{"bare infinite loop", `package p; func f() { for { work() } }`, false},
		{"loop with conditional return", `package p; func f() { for { if done() { return }; work() } }`, true},
		{"loop with break", `package p; func f() { for { if done() { break }; work() } }`, true},
		{"conditioned loop", `package p; func f() { for i := 0; i < 4; i++ { work() } }`, true},
		{"empty select", `package p; func f() { select {} }`, false},
		{"select with stop case", `package p; func f(stop chan int) { for { select { case <-stop: return } } }`, true},
		{"range over channel", `package p; func f(ch chan int) { for v := range ch { _ = v } }`, true},
		{"panic terminates", `package p; func f() { panic("boom") }`, true},
		{"infinite loop then dead code", `package p; func f() { for { } ; work() }`, false},
		{"self goto", `package p; func f() { L: goto L }`, false},
		{"forward goto", `package p; func f() { goto L; L: work() }`, true},
		{"labeled break from nested loop", `package p; func f() { L: for { for { break L } } }`, true},
		{"hang call severs fall-through", `package p; func f() { hang() }`, false},
		{"exit call reaches exit", `package p; func f() { for { exit() } }`, true},
		{"switch all clauses hang, no default", `package p; func f(x int) { switch x { case 1: hang() } }`, true},
		{"switch with hanging default", `package p; func f(x int) { switch x { default: hang() } }`, false},
		{"fallthrough to returning clause", `package p; func f(x int) { switch x { case 1: fallthrough; default: return } }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFirst(t, tc.body, cfg.Options{CallTerm: hangTerm})
			if got := g.CanReachExit(); got != tc.want {
				t.Errorf("CanReachExit = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFirst(t, `package p
func f(mu locker) {
	mu.Lock()
	defer mu.Unlock()
	if cond() {
		defer cleanup()
	}
}`, cfg.Options{})
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d calls, want 2", len(g.Defers))
	}
}

func TestEntryExitShape(t *testing.T) {
	g := buildFirst(t, `package p; func f() { work() }`, cfg.Options{})
	if g.Blocks[0] != g.Entry {
		t.Errorf("Blocks[0] is not Entry")
	}
	if g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Errorf("last block is not Exit")
	}
	for i, blk := range g.Blocks {
		if blk.Index != i {
			t.Errorf("Blocks[%d].Index = %d", i, blk.Index)
		}
	}
	if len(g.Exit.Nodes) != 0 {
		t.Errorf("Exit carries %d nodes, want none", len(g.Exit.Nodes))
	}
}

func TestBranchJoinPropagatesBothPaths(t *testing.T) {
	// if cond { a() } else { b() }; c() — the join block holding c()
	// must have both branch blocks as predecessors.
	g := buildFirst(t, `package p; func f() { if cond() { a() } else { b() }; c() }`, cfg.Options{})
	var join *cfg.Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "c" {
						join = blk
					}
				}
			}
		}
	}
	if join == nil {
		t.Fatal("no block holds the call to c")
	}
	if len(join.Preds) != 2 {
		t.Errorf("join block has %d preds, want 2", len(join.Preds))
	}
}

func TestVisitSkipsFuncLitAndCompoundBodies(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
func f(ch chan int) {
	g := func() { inner() }
	for v := range ch {
		insideRange()
		_ = v
	}
	_ = g
}`
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var calls []string
	fd := f.Decls[0].(*ast.FuncDecl)
	for _, stmt := range fd.Body.List {
		cfg.Visit(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					calls = append(calls, id.Name)
				}
			}
			return true
		})
	}
	for _, name := range calls {
		if name == "inner" {
			t.Errorf("Visit descended into a function literal")
		}
		if name == "insideRange" {
			t.Errorf("Visit descended into a range body")
		}
	}
}
