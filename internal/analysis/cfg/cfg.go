// Package cfg builds per-function control-flow graphs over go/ast. It
// is the substrate for Magellan's flow-aware analyzers: goroleak asks
// whether a goroutine body can reach its exit, lockspan propagates
// held-lock facts across branches and loops through the dataflow
// solver.
//
// A Graph has one virtual Entry and one virtual Exit block. Return
// statements, falling off the end of the body, explicit panic calls,
// and calls the caller declares process-terminating (os.Exit and
// friends, via Options.CallTerm) all edge to Exit. Calls declared
// hanging (a function already known never to return) end their block
// with no successor at all, which is how "the exit is unreachable"
// becomes decidable.
//
// Blocks carry only simple nodes: expressions and one-line statements.
// Control statements contribute their evaluated parts (an if
// contributes its condition, a for its init/cond/post) and their
// bodies become separate blocks. Two exceptions keep consumers honest:
// a *ast.RangeStmt node in a block stands for the evaluation of its
// operand and the per-iteration receive, and a *ast.SelectStmt node
// stands for the blocking select decision; Visit knows not to descend
// into either one's body.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	Blocks []*Block
	Entry  *Block
	// Exit is the virtual function-exit block. Deferred calls
	// conceptually run on the edge into it.
	Exit *Block
	// Defers collects every deferred call in source order, regardless
	// of the block it was registered in.
	Defers []*ast.CallExpr
}

// A Block is one basic block: nodes that execute consecutively.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// TermKind classifies what a call does to control flow.
type TermKind int

const (
	// TermNone: the call returns normally.
	TermNone TermKind = iota
	// TermExits: the call never returns but does terminate the
	// function (panic, os.Exit, log.Fatal): edge to Exit.
	TermExits
	// TermHangs: the call never returns and never terminates (an
	// infinite loop): the block gets no successor.
	TermHangs
)

// Options parameterize graph construction.
type Options struct {
	// CallTerm, when non-nil, classifies calls that end control flow.
	// The builtin panic is always treated as TermExits; CallTerm adds
	// to that.
	CallTerm func(*ast.CallExpr) TermKind
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{opts: opts, labels: map[string]*Block{}}
	b.g = &Graph{}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{Index: -1}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target)
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// CanReachExit reports whether any path from Entry reaches Exit — i.e.
// whether the function can ever return (or terminate the process).
func (g *Graph) CanReachExit() bool {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	push := func(b *Block) {
		if !seen[b.Index] {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	push(g.Entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// Visit calls f (pre-order, stop-on-false like ast.Inspect) on the
// parts of a block node that execute at that point in the graph. It
// does not descend into function literals (their bodies run elsewhere),
// nor into the bodies of the two compound nodes a block may carry: for
// a *ast.RangeStmt it visits the statement itself and its operand, for
// a *ast.SelectStmt only the statement itself.
func Visit(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		Visit(n.X, f)
	case *ast.SelectStmt:
		f(n)
	default:
		ast.Inspect(n, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			if m == nil {
				return true
			}
			return f(m)
		})
	}
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopFrame records the break/continue targets of one enclosing loop,
// switch, or select.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	g      *Graph
	opts   Options
	cur    *Block // nil after a terminator: following code is unreachable
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is set between a labeled statement and the loop it
	// labels, so `break L` / `continue L` resolve.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// current returns the block to append to, creating an unreachable one
// if control flow already ended (dead code still gets blocks, with no
// predecessors).
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		blk := b.current()
		blk.Nodes = append(blk.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The label introduces a join point (goto target).
		target := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.current(), b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			b.applyTerm(call)
		}
	case *ast.EmptyStmt:
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line.
		b.add(s)
	}
}

// applyTerm ends the current block if call never returns.
func (b *builder) applyTerm(call *ast.CallExpr) {
	kind := TermNone
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
		kind = TermExits
	} else if b.opts.CallTerm != nil {
		kind = b.opts.CallTerm(call)
	}
	switch kind {
	case TermExits:
		b.edge(b.current(), b.g.Exit)
		b.cur = nil
	case TermHangs:
		b.current() // materialize the block holding the call
		b.cur = nil
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.add(s)
				b.edge(b.current(), f.breakTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo != nil && (label == "" || f.label == label) {
				b.add(s)
				b.edge(b.current(), f.continueTo)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		b.add(s)
		b.gotos = append(b.gotos, pendingGoto{from: b.current(), label: label})
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt; as a statement it ends
		// the clause, and switchStmt wired the edge already.
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.current()
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after)
	}

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, after)
	}

	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: after, continueTo: post})
	b.pendingLabel = ""
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock()
	// The RangeStmt node stands for operand evaluation plus the
	// per-iteration receive/index step.
	head.Nodes = append(head.Nodes, s)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	after := b.newBlock()
	b.edge(head, after) // every range loop can end (exhaustion / closed channel)

	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: after, continueTo: head})
	b.pendingLabel = ""
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// switchStmt covers both expression and type switches; header is the
// tag expression or the type-switch guard, allowFall wires fallthrough
// edges (expression switches only).
func (b *builder) switchStmt(init ast.Stmt, header ast.Node, body *ast.BlockStmt, allowFall bool) {
	if init != nil {
		b.add(init)
	}
	if header != nil {
		b.add(header)
	}
	head := b.current()
	after := b.newBlock()

	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: after})
	b.pendingLabel = ""

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && allowFall {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			if b.cur != nil {
				b.edge(b.cur, blocks[i+1])
			}
			b.cur = nil
			continue
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	// The select node itself is the (possibly blocking) decision point.
	b.add(s)
	head := b.current()
	after := b.newBlock()

	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTo: after})
	b.pendingLabel = ""

	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		// The clause's comm operation is attributed to the SelectStmt
		// node in the predecessor block, not repeated here.
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	if !any {
		// `select {}` blocks forever: no successors at all.
		b.cur = nil
		_ = after
		b.frames = b.frames[:len(b.frames)-1]
		return
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}
