// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository stays dependency-free. It exists to make Magellan's
// reproduction invariants — seeded randomness, simulated time, sorted
// map emission, handled errors, disciplined locking — machine-checked
// instead of review-enforced.
//
// An Analyzer inspects one type-checked package (a load.Package) and
// reports Diagnostics. The cmd/magellan-vet driver runs every analyzer
// over every package and fails the build on findings.
//
// Findings can be suppressed line-by-line with a directive comment:
//
//	f.Close() //magellan:allow erridle — best-effort cleanup
//
// The directive names one analyzer (or "all") and applies to its own
// line and to the line directly below it, so it can also sit above the
// offending statement. Every suppression is visible in the diff, which
// is the point: exceptions are reviewed, not silent.
package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"slices"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //magellan:allow
	// directives. It must be a single lower-case word.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *load.Package

	report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Syntax }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.ImportPath }

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Run
}

// Position resolves the diagnostic against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics (suppressions already applied) sorted by file position.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			pass.report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if allowed.covers(pkg.Fset.Position(d.Pos), a.Name) {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	slices.SortFunc(out, func(a, b Diagnostic) int {
		pa, pb := pkgs[0].Fset.Position(a.Pos), pkgs[0].Fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return cmp.Compare(pa.Filename, pb.Filename)
		}
		if pa.Line != pb.Line {
			return pa.Line - pb.Line
		}
		return cmp.Compare(a.Analyzer, b.Analyzer)
	})
	return out, nil
}

// allowDirective is the comment prefix that suppresses findings.
const allowDirective = "//magellan:allow"

// allowSet records, per file and line, which analyzers are suppressed.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive covers its own line and the line directly below, so it
	// can trail the statement or sit on its own line above it.
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

func collectAllows(pkg *load.Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //magellan:allowed — not the directive
				}
				// Everything after the analyzer list (separated by
				// " — " or " - ") is a free-form justification.
				fields := strings.FieldsFunc(firstClause(rest), func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, name := range fields {
					names[name] = true
				}
			}
		}
	}
	return set
}

// firstClause cuts the directive body at the first justification
// separator ("—" or " - ") so trailing prose is not read as names.
func firstClause(s string) string {
	if i := strings.Index(s, "—"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, " - "); i >= 0 {
		s = s[:i]
	}
	return s
}
