// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository stays dependency-free. It exists to make Magellan's
// reproduction invariants — seeded randomness, simulated time, sorted
// map emission, handled errors, disciplined locking — machine-checked
// instead of review-enforced.
//
// An Analyzer inspects one type-checked package (a load.Package) and
// reports Diagnostics. Analyzers may also declare a fact phase: fact
// phases run over every package in import order before any Run phase,
// publishing per-function facts (see the facts package) that later
// packages' analyses can read — that is how a wall-clock read in
// internal/obs taints its callers in internal/sim. The
// cmd/magellan-vet driver runs every analyzer over every package and
// fails the build on findings.
//
// Findings can be suppressed line-by-line with a directive comment:
//
//	f.Close() //magellan:allow erridle — best-effort cleanup
//
// The directive names one analyzer (or "all") and applies to its own
// line and to the line directly below it, so it can also sit above the
// offending statement. Every suppression is visible in the diff, which
// is the point: exceptions are reviewed, not silent. RunAll reports
// every directive together with the number of findings it suppressed,
// which is what `magellan-vet -waivers` uses to flag stale ones.
package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"slices"
	"strings"

	"github.com/magellan-p2p/magellan/internal/analysis/facts"
	"github.com/magellan-p2p/magellan/internal/analysis/load"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //magellan:allow
	// directives. It must be a single lower-case word.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Facts, if non-nil, is the fact phase: it runs over every package
	// in import order before any analyzer's Run phase, and publishes
	// per-function facts through pass.Facts. It must not report
	// diagnostics.
	Facts func(pass *Pass) error

	// Run inspects the package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *load.Package

	// Facts is the run-wide cross-package fact store. During the fact
	// phase analyzers write to it; during the run phase they read.
	Facts *facts.Store

	report func(Diagnostic)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Syntax }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.ImportPath }

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Run
}

// Position resolves the diagnostic against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// A Waiver is one //magellan:allow directive found in an analyzed
// package, with the number of findings it suppressed in this run.
type Waiver struct {
	Position   token.Position
	Names      []string // analyzer names the directive lists
	Suppressed int      // findings suppressed in this run
}

// Stale reports whether the directive did nothing this run.
func (w Waiver) Stale() bool { return w.Suppressed == 0 }

// A Result is the full outcome of one analysis run.
type Result struct {
	// Diags are the surviving findings, sorted by file position.
	Diags []Diagnostic
	// Waivers lists every directive, sorted by file position.
	Waivers []Waiver
	// Facts is the populated cross-package fact store.
	Facts *facts.Store
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics (suppressions already applied) sorted by file position.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunAll is Run plus waiver accounting and the fact store.
func RunAll(pkgs []*load.Package, analyzers []*Analyzer) (*Result, error) {
	store := facts.NewStore()
	ordered := importOrder(pkgs)

	// Fact phase: import order, so callee facts exist before callers.
	for _, pkg := range ordered {
		for _, a := range analyzers {
			if a.Facts == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: store}
			pass.report = func(Diagnostic) {
				panic(fmt.Sprintf("analyzer %s reported a diagnostic during its fact phase", a.Name))
			}
			if err := a.Facts(pass); err != nil {
				return nil, fmt.Errorf("%s facts: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	var out []Diagnostic
	var waivers []*waiverRec
	for _, pkg := range ordered {
		allowed := collectAllows(pkg)
		waivers = append(waivers, allowed.recs...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: store}
			pass.report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if allowed.covers(pkg.Fset.Position(d.Pos), a.Name) {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	slices.SortFunc(out, func(a, b Diagnostic) int {
		pa, pb := pkgs[0].Fset.Position(a.Pos), pkgs[0].Fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return cmp.Compare(pa.Filename, pb.Filename)
		}
		if pa.Line != pb.Line {
			return pa.Line - pb.Line
		}
		return cmp.Compare(a.Analyzer, b.Analyzer)
	})

	res := &Result{Diags: out, Facts: store}
	for _, w := range waivers {
		res.Waivers = append(res.Waivers, Waiver{Position: w.pos, Names: w.names, Suppressed: w.suppressed})
	}
	slices.SortFunc(res.Waivers, func(a, b Waiver) int {
		if a.Position.Filename != b.Position.Filename {
			return cmp.Compare(a.Position.Filename, b.Position.Filename)
		}
		return a.Position.Line - b.Position.Line
	})
	return res, nil
}

// importOrder returns pkgs topologically sorted by their in-set
// imports (dependencies first), ties broken by import path. The input
// slice is not modified.
func importOrder(pkgs []*load.Package) []*load.Package {
	inSet := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		inSet[p.ImportPath] = p
	}
	remaining := slices.Clone(pkgs)
	slices.SortFunc(remaining, func(a, b *load.Package) int {
		return cmp.Compare(a.ImportPath, b.ImportPath)
	})
	emitted := make(map[string]bool, len(pkgs))
	ordered := make([]*load.Package, 0, len(pkgs))
	for len(remaining) > 0 {
		progress := false
		for i, p := range remaining {
			ready := true
			for _, imp := range p.Imports {
				if inSet[imp] != nil && !emitted[imp] {
					ready = false
					break
				}
			}
			if ready {
				ordered = append(ordered, p)
				emitted[p.ImportPath] = true
				remaining = slices.Delete(remaining, i, i+1)
				progress = true
				break
			}
		}
		if !progress {
			// Import cycles cannot occur in compiled Go; defensively
			// append the remainder in path order.
			ordered = append(ordered, remaining...)
			break
		}
	}
	return ordered
}

// allowDirective is the comment prefix that suppresses findings.
const allowDirective = "//magellan:allow"

// waiverRec is one parsed directive with its usage count.
type waiverRec struct {
	pos        token.Position
	names      []string
	nameSet    map[string]bool
	suppressed int
}

// allowSet indexes directives by file and covered line.
type allowSet struct {
	recs   []*waiverRec
	byLine map[string]map[int][]waiverReg
}

// waiverReg is one line-registration of a directive: on its own line
// (trailing-comment style) or on the line below it (own-line style).
type waiverReg struct {
	rec      *waiverRec
	sameLine bool
}

// covers reports whether some directive suppresses a finding by
// analyzer at pos, and counts the use against the directive. A
// directive covers its own line and the line directly below, so it can
// trail the statement or sit on its own line above it. A directive on
// the finding's own line wins over one trailing the line above, so
// adjacent waived statements each charge their own directive.
func (s *allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	var fallback *waiverRec
	for _, reg := range lines[pos.Line] {
		if !reg.rec.nameSet[analyzer] && !reg.rec.nameSet["all"] {
			continue
		}
		if reg.sameLine {
			reg.rec.suppressed++
			return true
		}
		if fallback == nil {
			fallback = reg.rec
		}
	}
	if fallback != nil {
		fallback.suppressed++
		return true
	}
	return false
}

func collectAllows(pkg *load.Package) *allowSet {
	set := &allowSet{byLine: make(map[string]map[int][]waiverReg)}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //magellan:allowed — not the directive
				}
				// Everything after the analyzer list (separated by
				// " — " or " - ") is a free-form justification.
				fields := strings.FieldsFunc(firstClause(rest), func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rec := &waiverRec{pos: pos, names: fields, nameSet: make(map[string]bool, len(fields))}
				for _, name := range fields {
					rec.nameSet[name] = true
				}
				set.recs = append(set.recs, rec)
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]waiverReg)
					set.byLine[pos.Filename] = lines
				}
				// The directive covers its own line and the next one.
				lines[pos.Line] = append(lines[pos.Line], waiverReg{rec: rec, sameLine: true})
				lines[pos.Line+1] = append(lines[pos.Line+1], waiverReg{rec: rec})
			}
		}
	}
	return set
}

// firstClause cuts the directive body at the first justification
// separator ("—" or " - ") so trailing prose is not read as names.
func firstClause(s string) string {
	if i := strings.Index(s, "—"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, " - "); i >= 0 {
		s = s[:i]
	}
	return s
}
