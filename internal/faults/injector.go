package faults

import (
	"math/rand"
	"time"
)

// Fate is the injector's verdict on one datagram.
type Fate struct {
	// Drop: the datagram never arrives. All other fields are zero.
	Drop bool
	// Truncated: the datagram arrives as a strict prefix and the receiver
	// must reject it.
	Truncated bool
	// Copies is how many times the datagram is delivered (1 normally, 2
	// when duplicated, 0 when dropped).
	Copies int
	// HoldSpan, when positive, holds the datagram until that many
	// subsequent datagrams have been sent past it.
	HoldSpan int
	// Jitter is the extra one-way delay on delivery.
	Jitter time.Duration
}

// Injector draws per-datagram fates from a seeded generator. The draw
// order is fixed per enabled knob, so two injectors with the same config
// and the same seed judge an identical datagram stream identically.
//
// Injector is not safe for concurrent use; the simulator drives it from
// its single event loop.
type Injector struct {
	cfg   Config
	rng   *rand.Rand
	tally Tally
}

// New builds an injector. The generator must be dedicated to this
// injector: sharing it with other consumers couples their draw sequences
// and breaks reproducibility the moment either side changes.
func New(cfg Config, rng *rand.Rand) *Injector {
	return &Injector{cfg: cfg, rng: rng}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Tally returns a copy of the running counters.
func (in *Injector) Tally() Tally { return in.tally }

// Judge decides the fate of the next datagram. Disabled knobs (zero
// rates) draw nothing from the generator, so a zero-rate config consumes
// no entropy and a partially enabled one is unaffected by the knobs left
// off.
func (in *Injector) Judge() Fate {
	in.tally.Datagrams++
	var f Fate
	if in.cfg.Loss > 0 && in.rng.Float64() < in.cfg.Loss {
		in.tally.Dropped++
		f.Drop = true
		return f
	}
	f.Copies = 1
	if in.cfg.Truncate > 0 && in.rng.Float64() < in.cfg.Truncate {
		in.tally.Truncated++
		f.Truncated = true
	}
	if in.cfg.Duplicate > 0 && in.rng.Float64() < in.cfg.Duplicate {
		in.tally.Duplicated++
		f.Copies = 2
	}
	if in.cfg.Reorder > 0 && in.rng.Float64() < in.cfg.Reorder {
		in.tally.Reordered++
		f.HoldSpan = in.cfg.span()
	}
	if in.cfg.JitterMax > 0 {
		if j := time.Duration(in.rng.Int63n(int64(in.cfg.JitterMax))); j > 0 {
			in.tally.Jittered++
			f.Jitter = j
		}
	}
	return f
}
