package faults

import "math/rand"

// Byte-level manglers produce the fault shapes a UDP receiver actually
// sees: torn tails from fragmented or clipped datagrams, and replayed
// leading bytes from buggy middleboxes. They are format-agnostic — the
// trace package composes them with encoded reports to seed its fuzz
// corpus — and pure: the input slice is never modified.

// TornTail returns a strict prefix of data, cutting at a point drawn from
// rng. At least one byte is removed; nil input stays nil.
func TornTail(rng *rand.Rand, data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	cut := rng.Intn(len(data))
	out := make([]byte, cut)
	copy(out, data[:cut])
	return out
}

// DuplicateHead replays the first n bytes of data in front of it, the
// shape a datagram takes when a middlebox re-emits a partially sent
// header. n is clamped to len(data).
func DuplicateHead(data []byte, n int) []byte {
	if n > len(data) {
		n = len(data)
	}
	out := make([]byte, 0, n+len(data))
	out = append(out, data[:n]...)
	out = append(out, data...)
	return out
}

// FlipBits flips k random bits of a copy of data, modeling line
// corruption that slips past the (optional) UDP checksum.
func FlipBits(rng *rand.Rand, data []byte, k int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) == 0 {
		return out
	}
	for i := 0; i < k; i++ {
		out[rng.Intn(len(out))] ^= byte(1) << uint(rng.Intn(8))
	}
	return out
}
