// Package faults is the seeded, deterministic fault-injection subsystem
// for the measurement plane. The paper's trace path is inherently lossy —
// peers report over UDP every 10 minutes (Sec. 3.2), so the real UUSee
// snapshots were assembled from dropped, duplicated, reordered, and
// truncated reports — and this package lets a simulation reproduce that
// hostility bit-for-bit from a seed.
//
// The package is deliberately a leaf: it imports only the standard
// library, so every other layer (netsim's datagram path, the sim's report
// emission, the trace codec's fuzz corpus) can build on it without import
// cycles. All randomness flows through an injected *rand.Rand; the
// determinism analyzer in magellan-vet enforces that no ambient entropy
// sneaks in.
package faults

import (
	"fmt"
	"time"
)

// Config sets the per-datagram fault rates of an injected path. The zero
// value injects nothing: a pipeline run with a zero Config is
// byte-identical to one with no injector at all.
type Config struct {
	// Loss is the probability a datagram vanishes in flight.
	Loss float64
	// Duplicate is the probability a datagram is delivered twice, as
	// happens when a retransmitting NAT or a flaky access link replays a
	// packet.
	Duplicate float64
	// Reorder is the probability a datagram is held back and delivered
	// after ReorderSpan subsequent datagrams have passed it.
	Reorder float64
	// ReorderSpan is how many later datagrams overtake a held one before
	// it is released; 0 means DefaultReorderSpan.
	ReorderSpan int
	// JitterMax bounds the extra one-way delay added to a delivered
	// datagram, drawn uniformly from [0, JitterMax). Zero disables
	// jitter.
	JitterMax time.Duration
	// Truncate is the probability a datagram arrives torn: the receiver
	// sees only a strict prefix of the payload and must reject it.
	Truncate float64
}

// DefaultReorderSpan is how many datagrams overtake a reordered one when
// ReorderSpan is left zero.
const DefaultReorderSpan = 4

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Loss > 0 || c.Duplicate > 0 || c.Reorder > 0 ||
		c.JitterMax > 0 || c.Truncate > 0
}

// Validate rejects rates outside [0, 1] and negative knobs.
func (c Config) Validate() error {
	rate := func(name string, v float64) error {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", name, v)
		}
		return nil
	}
	if err := rate("loss", c.Loss); err != nil {
		return err
	}
	if err := rate("duplicate", c.Duplicate); err != nil {
		return err
	}
	if err := rate("reorder", c.Reorder); err != nil {
		return err
	}
	if err := rate("truncate", c.Truncate); err != nil {
		return err
	}
	if c.ReorderSpan < 0 {
		return fmt.Errorf("faults: negative reorder span %d", c.ReorderSpan)
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("faults: negative jitter bound %v", c.JitterMax)
	}
	return nil
}

// span returns the effective reorder span.
func (c Config) span() int {
	if c.ReorderSpan > 0 {
		return c.ReorderSpan
	}
	return DefaultReorderSpan
}

// Tally counts fate decisions. All counters are per-datagram (a
// duplicated datagram counts one Datagram and one Duplicated), so rates
// can be checked against the configured probabilities.
type Tally struct {
	// Datagrams is the total number judged.
	Datagrams uint64
	// Dropped datagrams vanished entirely.
	Dropped uint64
	// Duplicated datagrams were delivered twice.
	Duplicated uint64
	// Reordered datagrams were held back behind later traffic.
	Reordered uint64
	// Jittered datagrams were delayed by a nonzero jitter draw.
	Jittered uint64
	// Truncated datagrams arrived as a strict prefix (receiver rejects).
	Truncated uint64
}

// Delivered returns how many datagrams arrived intact at least once.
func (t Tally) Delivered() uint64 {
	return t.Datagrams - t.Dropped - t.Truncated
}

// String renders the tally in the stable key=value form the CLI and the
// chaos CI step grep for.
func (t Tally) String() string {
	return fmt.Sprintf("datagrams=%d dropped=%d duplicated=%d reordered=%d jittered=%d truncated=%d",
		t.Datagrams, t.Dropped, t.Duplicated, t.Reordered, t.Jittered, t.Truncated)
}
