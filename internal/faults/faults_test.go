package faults

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{Loss: 0.05, Duplicate: 0.02, Reorder: 0.01, JitterMax: time.Second, Truncate: 0.01}, true},
		{"full loss", Config{Loss: 1}, true},
		{"negative loss", Config{Loss: -0.1}, false},
		{"loss above one", Config{Loss: 1.01}, false},
		{"nan rate", Config{Duplicate: math.NaN()}, false},
		{"negative span", Config{Reorder: 0.1, ReorderSpan: -1}, false},
		{"negative jitter", Config{JitterMax: -time.Second}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, cfg := range []Config{
		{Loss: 0.01}, {Duplicate: 0.01}, {Reorder: 0.01},
		{JitterMax: time.Millisecond}, {Truncate: 0.01},
	} {
		if !cfg.Enabled() {
			t.Errorf("%+v reports disabled", cfg)
		}
	}
	// ReorderSpan alone injects nothing.
	if (Config{ReorderSpan: 5}).Enabled() {
		t.Error("span-only config reports enabled")
	}
}

// TestJudgeDeterministic pins the core contract: same config, same seed,
// same fate sequence.
func TestJudgeDeterministic(t *testing.T) {
	cfg := Config{Loss: 0.1, Duplicate: 0.05, Reorder: 0.05, JitterMax: 2 * time.Second, Truncate: 0.02}
	run := func() []Fate {
		in := New(cfg, rand.New(rand.NewSource(42)))
		out := make([]Fate, 5000)
		for i := range out {
			out[i] = in.Judge()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestJudgeRates checks each counter lands near its configured rate.
func TestJudgeRates(t *testing.T) {
	cfg := Config{Loss: 0.10, Duplicate: 0.05, Reorder: 0.08, Truncate: 0.03}
	in := New(cfg, rand.New(rand.NewSource(7)))
	const n = 50000
	for i := 0; i < n; i++ {
		in.Judge()
	}
	ta := in.Tally()
	if ta.Datagrams != n {
		t.Fatalf("judged %d datagrams, want %d", ta.Datagrams, n)
	}
	check := func(name string, got uint64, want float64) {
		frac := float64(got) / n
		if frac < want*0.7 || frac > want*1.3 {
			t.Errorf("%s rate %.4f far from configured %.4f", name, frac, want)
		}
	}
	check("loss", ta.Dropped, cfg.Loss)
	// Survivor-conditional rates: duplicate/reorder/truncate are only
	// drawn for datagrams that were not dropped.
	surv := 1 - cfg.Loss
	check("duplicate", ta.Duplicated, cfg.Duplicate*surv)
	check("reorder", ta.Reordered, cfg.Reorder*surv)
	check("truncate", ta.Truncated, cfg.Truncate*surv)
	if got, want := ta.Delivered(), ta.Datagrams-ta.Dropped-ta.Truncated; got != want {
		t.Errorf("Delivered() = %d, want %d", got, want)
	}
}

// TestJudgeZeroRatesDrawNothing pins the byte-identity guarantee: a
// zero-rate injector consumes no entropy, so a generator shared with it
// is untouched.
func TestJudgeZeroRatesDrawNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := New(Config{}, rng)
	for i := 0; i < 100; i++ {
		f := in.Judge()
		if f.Drop || f.Truncated || f.Copies != 1 || f.HoldSpan != 0 || f.Jitter != 0 {
			t.Fatalf("zero config produced non-trivial fate %+v", f)
		}
	}
	want := rand.New(rand.NewSource(3)).Uint64()
	if got := rng.Uint64(); got != want {
		t.Errorf("zero-rate injector consumed entropy: next draw %d, want %d", got, want)
	}
}

func TestTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := []byte("0123456789abcdef")
	for i := 0; i < 200; i++ {
		torn := TornTail(rng, data)
		if len(torn) >= len(data) {
			t.Fatalf("torn tail kept %d of %d bytes", len(torn), len(data))
		}
		if !bytes.HasPrefix(data, torn) {
			t.Fatalf("torn tail %q is not a prefix of %q", torn, data)
		}
	}
	if TornTail(rng, nil) != nil {
		t.Error("torn nil input is non-nil")
	}
}

func TestDuplicateHead(t *testing.T) {
	data := []byte("headbody")
	got := DuplicateHead(data, 4)
	if want := []byte("headheadbody"); !bytes.Equal(got, want) {
		t.Errorf("DuplicateHead = %q, want %q", got, want)
	}
	if got := DuplicateHead(data, 100); !bytes.Equal(got, append([]byte("headbody"), data...)) {
		t.Errorf("clamped DuplicateHead = %q", got)
	}
	if !bytes.Equal(data, []byte("headbody")) {
		t.Error("DuplicateHead modified its input")
	}
}

func TestFlipBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := bytes.Repeat([]byte{0}, 64)
	got := FlipBits(rng, data, 3)
	if bytes.Equal(got, data) {
		t.Error("FlipBits changed nothing")
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("FlipBits modified its input")
		}
	}
	if out := FlipBits(rng, nil, 3); len(out) != 0 {
		t.Errorf("FlipBits(nil) = %v", out)
	}
}
