package gnutella

import (
	"testing"

	"github.com/magellan-p2p/magellan/internal/graph"
	"github.com/magellan-p2p/magellan/internal/metrics"
)

func TestConfigValidation(t *testing.T) {
	if _, err := Build(Config{Peers: 5}); err == nil {
		t.Error("tiny overlay accepted")
	}
	if _, err := Build(Config{Peers: 100, Gen: Generation(99)}); err == nil {
		t.Error("unknown generation accepted")
	}
}

func TestLegacyPowerLawDegrees(t *testing.T) {
	g, err := Build(Config{Seed: 1, Peers: 8000, Gen: Legacy})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 8000 {
		t.Errorf("N = %d, want 8000", g.N())
	}
	degrees := g.UndirectedDegrees()
	fit := graph.FitPowerLaw(degrees, 4)
	// Preferential attachment yields a power law with α ≈ 3 and a good
	// KS fit — the distribution early Gnutella studies reported.
	if fit.Alpha < 2 || fit.Alpha > 4 {
		t.Errorf("legacy α = %.2f, want ≈ 3", fit.Alpha)
	}
	if fit.KS > 0.1 {
		t.Errorf("legacy KS = %.3f; power law should fit well", fit.KS)
	}
	// Heavy tail: the max degree dwarfs the median.
	h := metrics.NewHistogram(degrees)
	if h.Max() < 10*h.Mode() {
		t.Errorf("max degree %d not ≫ mode %d; tail too light", h.Max(), h.Mode())
	}
}

func TestModernSpikedDegrees(t *testing.T) {
	cfg := Config{Seed: 2, Peers: 8000, Gen: Modern}
	g, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sane, _ := cfg.sanitize()

	// Leaves spike at LeafLinks.
	all := metrics.NewHistogram(g.UndirectedDegrees())
	if all.Mode() != sane.LeafLinks {
		t.Errorf("overall mode = %d, want the leaf spike at %d", all.Mode(), sane.LeafLinks)
	}

	// Ultrapeers spike near the connection target, and a power law fits
	// their distribution poorly — Stutzbach's correction to the early
	// studies.
	ultra := metrics.NewHistogram(UltrapeerDegrees(g, sane.LeafLinks))
	if ultra.N() == 0 {
		t.Fatal("no ultrapeers found")
	}
	mode := ultra.Mode()
	if mode < sane.UltraTarget-5 || mode > sane.UltraTarget+25 {
		t.Errorf("ultrapeer mode = %d, want near target %d", mode, sane.UltraTarget)
	}
	fit := graph.FitPowerLaw(ultra.Values(), 1)
	if fit.KS < 0.15 {
		t.Errorf("modern ultrapeer KS = %.3f; spiked distribution should reject a power law", fit.KS)
	}
}

func TestModernTwoTierStructure(t *testing.T) {
	cfg := Config{Seed: 3, Peers: 2000, Gen: Modern}
	g, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sane, _ := cfg.sanitize()
	leaves := 0
	for i := 0; i < g.N(); i++ {
		if g.UndirectedDegree(int32(i)) <= sane.LeafLinks {
			leaves++
		}
	}
	frac := float64(leaves) / float64(g.N())
	if frac < 0.7 {
		t.Errorf("leaf fraction = %.2f, want ≈ 0.85", frac)
	}
	// The overlay must be usable: connected at its core.
	lc := g.LargestComponent()
	if float64(lc.N()) < 0.95*float64(g.N()) {
		t.Errorf("largest component %d of %d; overlay fragmented", lc.N(), g.N())
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, gen := range []Generation{Legacy, Modern} {
		a, err := Build(Config{Seed: 7, Peers: 500, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(Config{Seed: 7, Peers: 500, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		if a.M() != b.M() || a.N() != b.N() {
			t.Errorf("gen %d not deterministic: (%d,%d) vs (%d,%d)", gen, a.N(), a.M(), b.N(), b.M())
		}
	}
}

func TestSymmetricEdges(t *testing.T) {
	g, err := Build(Config{Seed: 4, Peers: 300, Gen: Modern})
	if err != nil {
		t.Fatal(err)
	}
	// Every Gnutella connection is a symmetric TCP link.
	if r := g.Reciprocity(); r != 1 {
		t.Errorf("reciprocity = %v, want 1 (symmetric links)", r)
	}
}
