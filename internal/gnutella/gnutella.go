// Package gnutella builds Gnutella-style file-sharing overlay topologies
// — the baseline the paper contrasts UUSee against. Earlier measurement
// studies (Ripeanu et al., Jovanovic et al.) reported power-law degree
// distributions for the first-generation network; Stutzbach et al. found
// modern two-tier Gnutella is better described by a flat-ish ultrapeer
// distribution with a spike at the client's connection target. Both
// generations are generated here so the analysis pipeline can show, with
// the same fitting machinery, that neither matches UUSee's spiked,
// supply-driven degree structure.
package gnutella

import (
	"fmt"
	"math/rand"

	"github.com/magellan-p2p/magellan/internal/graph"
	"github.com/magellan-p2p/magellan/internal/isp"
)

// Generation selects the overlay construction era.
type Generation uint8

const (
	// Legacy is flat first-generation Gnutella: peers discover neighbours
	// through pong caches, which are populated proportionally to a
	// node's existing connectivity — preferential attachment, hence
	// power-law degrees.
	Legacy Generation = iota + 1
	// Modern is two-tier Gnutella: leaves hold a few connections to
	// ultrapeers; ultrapeers hold up to a target number of
	// ultrapeer-to-ultrapeer connections, producing a spike at the
	// target rather than a power law.
	Modern
)

// Config parameterizes topology construction.
type Config struct {
	Seed  int64
	Peers int
	Gen   Generation

	// LegacyLinks is the number of neighbours each joining legacy peer
	// attaches to (BA-style m). Default 3.
	LegacyLinks int

	// UltrapeerFraction is the share of modern peers promoted to
	// ultrapeer (default 0.15). LeafLinks is each leaf's ultrapeer
	// connection count (default 3); UltraTarget the ultrapeer's
	// peer-to-peer connection target (default 30, the value Stutzbach's
	// spike sits at).
	UltrapeerFraction float64
	LeafLinks         int
	UltraTarget       int
}

func (c Config) sanitize() (Config, error) {
	if c.Peers < 10 {
		return c, fmt.Errorf("gnutella: need at least 10 peers, got %d", c.Peers)
	}
	if c.Gen == 0 {
		c.Gen = Modern
	}
	if c.LegacyLinks <= 0 {
		c.LegacyLinks = 3
	}
	if c.UltrapeerFraction <= 0 || c.UltrapeerFraction >= 1 {
		c.UltrapeerFraction = 0.15
	}
	if c.LeafLinks <= 0 {
		c.LeafLinks = 3
	}
	if c.UltraTarget <= 0 {
		c.UltraTarget = 30
	}
	return c, nil
}

// Build generates one overlay snapshot. Edges are emitted in both
// directions (Gnutella connections are symmetric TCP links), so degree
// analyses read the undirected structure.
func Build(cfg Config) (*graph.Digraph, error) {
	cfg, err := cfg.sanitize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Gen {
	case Legacy:
		return buildLegacy(cfg, rng), nil
	case Modern:
		return buildModern(cfg, rng), nil
	default:
		return nil, fmt.Errorf("gnutella: unknown generation %d", cfg.Gen)
	}
}

// buildLegacy grows the overlay with preferential attachment: each
// arriving peer connects to LegacyLinks existing peers drawn
// proportionally to current degree (the pong-cache bias).
func buildLegacy(cfg Config, rng *rand.Rand) *graph.Digraph {
	b := graph.NewBuilder()
	// endpointList holds one entry per edge endpoint, so uniform
	// sampling from it is degree-proportional sampling — the classic
	// Barabási–Albert trick.
	var endpoints []int

	addEdge := func(u, v int) {
		b.AddEdge(isp.Addr(u+1), isp.Addr(v+1))
		b.AddEdge(isp.Addr(v+1), isp.Addr(u+1))
		endpoints = append(endpoints, u, v)
	}

	// Seed clique of m+1 nodes.
	m := cfg.LegacyLinks
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			addEdge(u, v)
		}
	}
	for u := m + 1; u < cfg.Peers; u++ {
		chosen := make(map[int]struct{}, m)
		for len(chosen) < m {
			v := endpoints[rng.Intn(len(endpoints))]
			if v == u {
				continue
			}
			if _, dup := chosen[v]; dup {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			addEdge(u, v)
		}
	}
	return b.Build()
}

// buildModern wires the two-tier overlay: ultrapeers first connect among
// themselves toward UltraTarget connections, then leaves attach to
// LeafLinks random ultrapeers.
func buildModern(cfg Config, rng *rand.Rand) *graph.Digraph {
	b := graph.NewBuilder()
	nUltra := int(float64(cfg.Peers) * cfg.UltrapeerFraction)
	if nUltra < cfg.UltraTarget+1 {
		nUltra = cfg.UltraTarget + 1
	}
	if nUltra > cfg.Peers-1 {
		nUltra = cfg.Peers - 1
	}
	degree := make([]int, cfg.Peers)

	addEdge := func(u, v int) {
		b.AddEdge(isp.Addr(u+1), isp.Addr(v+1))
		b.AddEdge(isp.Addr(v+1), isp.Addr(u+1))
		degree[u]++
		degree[v]++
	}

	// Ultrapeer mesh: each ultrapeer samples peers until it reaches its
	// target, skipping saturated candidates; jitter the per-node target
	// slightly so the spike has realistic width.
	targets := make([]int, nUltra)
	for u := range targets {
		targets[u] = cfg.UltraTarget - 2 + rng.Intn(5)
	}
	type pair struct{ u, v int }
	seen := make(map[pair]struct{})
	for u := 0; u < nUltra; u++ {
		for attempts := 0; degree[u] < targets[u] && attempts < 20*cfg.UltraTarget; attempts++ {
			v := rng.Intn(nUltra)
			if v == u || degree[v] >= targets[v]+2 {
				continue
			}
			key := pair{min(u, v), max(u, v)}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			addEdge(u, v)
		}
	}

	// Leaves.
	for u := nUltra; u < cfg.Peers; u++ {
		chosen := make(map[int]struct{}, cfg.LeafLinks)
		for len(chosen) < cfg.LeafLinks {
			chosen[rng.Intn(nUltra)] = struct{}{}
		}
		for v := range chosen {
			addEdge(u, v)
		}
	}
	return b.Build()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// UltrapeerDegrees extracts the undirected degrees of peers with degree
// above the leaf level — the population whose distribution Stutzbach's
// spike claim concerns.
func UltrapeerDegrees(g *graph.Digraph, leafLinks int) []int {
	var out []int
	for i := 0; i < g.N(); i++ {
		if d := g.UndirectedDegree(int32(i)); d > leafLinks {
			out = append(out, d)
		}
	}
	return out
}
