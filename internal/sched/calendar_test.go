package sched

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refItem / refHeap: a container/heap reference implementation with the
// same (at, seq) total order, used as the oracle in property tests.
type refItem struct {
	at  int64
	seq uint64
	v   int
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func TestEmptyQueue(t *testing.T) {
	q := NewQueue[int]()
	if q.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", q.Len())
	}
	if _, _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty queue returned ok")
	}
	if _, _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty queue returned ok")
	}
}

func TestOrderedDrain(t *testing.T) {
	q := NewQueue[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		q.Push(int64(i)*1e6, uint64(i), i)
	}
	for i := 0; i < n; i++ {
		at, seq, v, ok := q.PopMin()
		if !ok || at != int64(i)*1e6 || seq != uint64(i) || v != i {
			t.Fatalf("pop %d: got (%d,%d,%d,%v)", i, at, seq, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after drain", q.Len())
	}
}

// TestSameTimestampOrdering: entries pushed at one instant must drain in
// sequence order regardless of push order.
func TestSameTimestampOrdering(t *testing.T) {
	q := NewQueue[int]()
	const at = int64(1234567890)
	order := []uint64{7, 2, 9, 0, 5, 3, 8, 1, 6, 4}
	for _, seq := range order {
		q.Push(at, seq, int(seq))
	}
	for want := uint64(0); want < 10; want++ {
		_, seq, v, ok := q.PopMin()
		if !ok || seq != want || v != int(want) {
			t.Fatalf("pop: got seq=%d v=%d ok=%v, want seq=%d", seq, v, ok, want)
		}
	}
}

// TestPushBelowFloor: a push earlier than everything already popped-to
// must still surface before later entries (the scan rewinds).
func TestPushBelowFloor(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 100; i++ {
		q.Push(int64(i)*1e9, uint64(i), i)
	}
	// Drain halfway so the scan stands around t=50s.
	for i := 0; i < 50; i++ {
		q.PopMin()
	}
	q.Push(3, 1000, -1) // far below the scan position
	at, _, v, ok := q.PeekMin()
	if !ok || at != 3 || v != -1 {
		t.Fatalf("PeekMin after below-floor push: got (%d,%d,%v)", at, v, ok)
	}
	q.PopMin()
	at, _, v, _ = q.PopMin()
	if at != 50*1e9 || v != 50 {
		t.Fatalf("next pop: got (%d,%d), want (50e9,50)", at, v)
	}
}

// TestChurnInterleaved drives heavy interleaved push/pop churn (the
// join/depart/reschedule pattern) against the heap oracle.
func TestChurnInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	q := NewQueue[int]()
	ref := &refHeap{}
	var seq uint64
	now := int64(0)
	for step := 0; step < 200000; step++ {
		if ref.Len() == 0 || rng.Intn(3) != 0 {
			// Push near now, occasionally far ahead, rarely at now exactly
			// (same-timestamp collisions).
			var at int64
			switch rng.Intn(10) {
			case 0:
				at = now // collision
			case 1:
				at = now + rng.Int63n(1e12) // far future
			default:
				at = now + rng.Int63n(1e9)
			}
			q.Push(at, seq, int(seq))
			heap.Push(ref, refItem{at: at, seq: seq, v: int(seq)})
			seq++
		} else {
			at, gseq, v, ok := q.PopMin()
			want := heap.Pop(ref).(refItem)
			if !ok || at != want.at || gseq != want.seq || v != want.v {
				t.Fatalf("step %d: pop (%d,%d,%d,%v), want (%d,%d,%d)",
					step, at, gseq, v, ok, want.at, want.seq, want.v)
			}
			if at < now {
				t.Fatalf("step %d: time went backwards: %d < %d", step, at, now)
			}
			now = at
		}
		if q.Len() != ref.Len() {
			t.Fatalf("step %d: Len %d != ref %d", step, q.Len(), ref.Len())
		}
	}
}

// TestPropertyVsHeap is the seeded property test from the issue: for a
// batch of random seeds, a random push/pop program must produce an event
// order identical to the container/heap scheduler.
func TestPropertyVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue[int]()
		ref := &refHeap{}
		var seq uint64
		n := 500 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			at := rng.Int63n(1 << uint(20+rng.Intn(30)))
			q.Push(at, seq, int(seq))
			heap.Push(ref, refItem{at: at, seq: seq, v: int(seq)})
			seq++
			// Interleave some pops mid-build.
			if rng.Intn(4) == 0 && ref.Len() > 0 {
				at, gseq, v, ok := q.PopMin()
				want := heap.Pop(ref).(refItem)
				if !ok || at != want.at || gseq != want.seq || v != want.v {
					t.Fatalf("seed %d: mid pop mismatch", seed)
				}
			}
		}
		for ref.Len() > 0 {
			at, gseq, v, ok := q.PopMin()
			want := heap.Pop(ref).(refItem)
			if !ok || at != want.at || gseq != want.seq || v != want.v {
				t.Fatalf("seed %d: drain mismatch: (%d,%d,%d,%v) want (%d,%d,%d)",
					seed, at, gseq, v, ok, want.at, want.seq, want.v)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: residue %d", seed, q.Len())
		}
	}
}

// TestShrinkGrow exercises the resize path both directions.
func TestShrinkGrow(t *testing.T) {
	q := NewQueue[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		q.Push(int64(i%97)*1e7, uint64(i), i)
	}
	var prev int64 = -1
	var prevSeq uint64
	for i := 0; i < n; i++ {
		at, seq, _, ok := q.PopMin()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if at < prev || (at == prev && seq <= prevSeq && i > 0) {
			t.Fatalf("pop %d: order violation (%d,%d) after (%d,%d)", i, at, seq, prev, prevSeq)
		}
		prev, prevSeq = at, seq
	}
}

func BenchmarkQueueHold(b *testing.B) {
	// Classic hold model: steady-state queue of 10k entries, each
	// operation pops the min and pushes a successor a random-ish offset
	// ahead (deterministic LCG so the benchmark is stable).
	q := NewQueue[int]()
	const hold = 10000
	lcg := uint64(12345)
	next := func() int64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int64(lcg % 1e9)
	}
	var seq uint64
	for i := 0; i < hold; i++ {
		q.Push(next(), seq, i)
		seq++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _, v, _ := q.PopMin()
		q.Push(at+next(), seq, v)
		seq++
	}
}
