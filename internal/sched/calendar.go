// Package sched provides the calendar queue backing the discrete-event
// scheduler: a priority queue over (instant, sequence) keys with O(1)
// amortized insert and pop-min under the access pattern a simulation
// produces (events clustered around the advancing virtual "now").
//
// The structure is R. Brown's calendar queue (CACM '88): a ring of
// buckets, each one bucket-width of virtual time wide, events hashed
// into bucket (at / width) mod nbuckets. Popping scans forward from the
// current bucket, taking an event only if it falls inside the bucket's
// current "year" window; a full fruitless rotation falls back to a
// direct minimum search (rare — it means the queue is sparse relative
// to its width, which the next resize corrects). The bucket count and
// width adapt to the live event population, so a 100k-peer simulation
// with hundreds of thousands of pending timers pays a handful of
// comparisons per operation where a binary heap pays log₂(n) ≈ 18.
//
// Determinism: the pop order is the unique total order by (at, seq) —
// identical to the heap scheduler it replaces — and every operation is
// a pure function of the push/pop history. The package never reads the
// wall clock and draws no randomness.
package sched

import "slices"

// entry is one queued item. Buckets keep entries sorted descending by
// key so the minimum sits at the end and pops are O(1).
type entry[T any] struct {
	at  int64
	seq uint64
	v   T
}

// before reports whether a orders strictly before b in (at, seq) order.
func (a entry[T]) before(b entry[T]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const (
	minBuckets = 16
	// sampleMax bounds the resize-time width sample.
	sampleMax = 64
	// defaultWidth is the bucket width before the first resize has seen
	// enough events to measure real inter-event gaps (1s in nanoseconds).
	defaultWidth = int64(1e9)
)

// Queue is a calendar queue over (at, seq) keys carrying values of type
// T. The zero value is not ready; use NewQueue. Not safe for concurrent
// use.
type Queue[T any] struct {
	buckets [][]entry[T]
	mask    int64 // len(buckets)-1, len is a power of two
	width   int64 // virtual-time width of one bucket, > 0
	size    int

	// cur is the bucket the pop scan stands in and top the exclusive
	// upper bound of cur's current-year window: an entry in cur
	// qualifies iff entry.at < top.
	cur int64
	top int64
}

// NewQueue returns an empty calendar queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{
		buckets: make([][]entry[T], minBuckets),
		mask:    minBuckets - 1,
		width:   defaultWidth,
	}
	q.rewind(0)
	return q
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return q.size }

// bucketOf maps an instant to its bucket index.
func (q *Queue[T]) bucketOf(at int64) int64 {
	b := at / q.width
	if at < 0 && at%q.width != 0 {
		b-- // floor division for pre-epoch instants
	}
	return b & q.mask
}

// rewind points the pop scan at the window containing at.
func (q *Queue[T]) rewind(at int64) {
	q.cur = q.bucketOf(at)
	w := at / q.width
	if at < 0 && at%q.width != 0 {
		w--
	}
	q.top = (w + 1) * q.width
}

// Push inserts an entry. Keys may arrive in any order; seq must be
// unique per queue for the pop order to be total.
func (q *Queue[T]) Push(at int64, seq uint64, v T) {
	e := entry[T]{at: at, seq: seq, v: v}
	b := q.bucketOf(at)
	q.insert(b, e)
	q.size++
	if at < q.top-q.width {
		// Earlier than the scan's current window: rewind so the scan
		// cannot walk past it.
		q.rewind(at)
	}
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insert places e into bucket b keeping the bucket sorted descending.
func (q *Queue[T]) insert(b int64, e entry[T]) {
	bucket := q.buckets[b]
	// Common case: e is the earliest in its bucket (events are pushed
	// near the advancing now) — append to the tail.
	if n := len(bucket); n == 0 || e.before(bucket[n-1]) {
		q.buckets[b] = append(bucket, e)
		return
	}
	lo, hi := 0, len(bucket)
	for lo < hi {
		mid := (lo + hi) / 2
		if bucket[mid].before(e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.buckets[b] = slices.Insert(bucket, lo, e)
}

// PeekMin returns the earliest entry without removing it.
func (q *Queue[T]) PeekMin() (at int64, seq uint64, v T, ok bool) {
	if q.size == 0 {
		var zero T
		return 0, 0, zero, false
	}
	b := q.findMin()
	e := q.buckets[b][len(q.buckets[b])-1]
	return e.at, e.seq, e.v, true
}

// PopMin removes and returns the earliest entry.
func (q *Queue[T]) PopMin() (at int64, seq uint64, v T, ok bool) {
	if q.size == 0 {
		var zero T
		return 0, 0, zero, false
	}
	b := q.findMin()
	bucket := q.buckets[b]
	e := bucket[len(bucket)-1]
	q.buckets[b] = bucket[:len(bucket)-1]
	q.size--
	if q.size < len(q.buckets)/2 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return e.at, e.seq, e.v, true
}

// findMin advances the scan to the bucket holding the minimum entry and
// returns its index. The queue must be non-empty.
func (q *Queue[T]) findMin() int64 {
	for rounds := 0; rounds <= len(q.buckets); rounds++ {
		bucket := q.buckets[q.cur]
		if n := len(bucket); n > 0 && bucket[n-1].at < q.top {
			return q.cur
		}
		q.cur = (q.cur + 1) & q.mask
		q.top += q.width
	}
	// A full fruitless rotation: the next event lies beyond the scanned
	// year. Find the global minimum directly and park the scan on it.
	var best entry[T]
	found := false
	for _, bucket := range q.buckets {
		if n := len(bucket); n > 0 {
			if e := bucket[n-1]; !found || e.before(best) {
				best, found = e, true
			}
		}
	}
	q.rewind(best.at)
	return q.bucketOf(best.at)
}

// resize rebuilds the ring with n buckets and a width fitted to the
// current event spacing.
func (q *Queue[T]) resize(n int) {
	var all []entry[T]
	if q.size > 0 {
		all = make([]entry[T], 0, q.size)
		for _, bucket := range q.buckets {
			all = append(all, bucket...)
		}
	}
	q.width = q.fitWidth(all)
	q.buckets = make([][]entry[T], n)
	q.mask = int64(n - 1)
	for _, e := range all {
		q.insert(q.bucketOf(e.at), e)
	}
	if q.size > 0 {
		min := all[0]
		for _, e := range all[1:] {
			if e.before(min) {
				min = e
			}
		}
		q.rewind(min.at)
	} else {
		q.rewind(q.top - q.width)
	}
}

// fitWidth estimates a bucket width of about three mean inter-event
// gaps, measured over a sample of queued entries — Brown's rule, which
// keeps the expected bucket occupancy near one.
func (q *Queue[T]) fitWidth(all []entry[T]) int64 {
	if len(all) < 2 {
		return q.width
	}
	sample := all
	if len(sample) > sampleMax {
		stride := len(all) / sampleMax
		sample = make([]entry[T], 0, sampleMax)
		for i := 0; i < len(all) && len(sample) < sampleMax; i += stride {
			sample = append(sample, all[i])
		}
	}
	ats := make([]int64, len(sample))
	for i, e := range sample {
		ats[i] = e.at
	}
	slices.Sort(ats)
	span := ats[len(ats)-1] - ats[0]
	if span <= 0 {
		return q.width
	}
	w := 3 * span / int64(len(ats)-1)
	if w < 1 {
		w = 1
	}
	return w
}
