// Package magellan reproduces "Magellan: Charting Large-Scale
// Peer-to-Peer Live Streaming Topologies" (Wu, Li, Zhao — ICDCS 2007):
// a protocol-faithful simulator of the UUSee mesh-streaming overlay, the
// trace-collection pipeline the paper's measurement study ran on, and
// the graph-analysis library that regenerates every figure of the
// evaluation (overlay scale, ISP mix, streaming quality, degree
// distributions, small-world metrics, and edge reciprocity).
//
// The implementation lives under internal/; see README.md for the
// architecture tour, DESIGN.md for the system inventory and experiment
// index, and EXPERIMENTS.md for paper-versus-measured results. The
// benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig -benchmem .
package magellan
