module github.com/magellan-p2p/magellan

go 1.22
